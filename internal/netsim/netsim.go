// Package netsim is the cluster simulator: it executes an SPMD program
// (package sched) on every chip of the mesh over the discrete-event kernel
// (package des), modelling the TPUv4-like hardware of paper §4.1:
//
//   - one compute engine per chip (the two cores and their systolic arrays,
//     aggregated, with a roofline of effective FLOPS vs HBM bandwidth),
//   - one link controller per chip per mesh direction (the NIC drives the
//     four ICI links; ring traffic in a direction serialises on that
//     direction's controller while the two directions run in parallel),
//   - ring-synchronised collectives: a collective starts when every chip of
//     the ring has reached it and its links are free, each step paying the
//     synchronisation latency and the wire time of its payload,
//   - SUMMA-style broadcast/reduce pipelining with bubbles (P+D-2 stages of
//     fine-grain packets, Fig. 3 left),
//   - HBM contention between the compute engine and the NIC — the only
//     interference point in the paper's simulated TPU,
//   - an optional no-overlap mode reproducing current real TPU behaviour
//     (Table 3), in which each chip fully serialises communication and
//     computation.
//
// The simulator reports the makespan plus the per-chip communication-time
// breakdown (launch / sync / transfer) of Fig. 10 and the exposed
// (non-overlapped) communication time.
package netsim

import (
	"fmt"
	"sort"

	"meshslice/internal/chipsim"
	"meshslice/internal/des"
	"meshslice/internal/fault"
	"meshslice/internal/hw"
	"meshslice/internal/obs"
	"meshslice/internal/sched"
	"meshslice/internal/topology"
)

// Options selects simulator behaviours.
type Options struct {
	// NoOverlap serialises every operation on a chip, modelling TPU
	// runtimes that cannot run AG/RdS collectives asynchronously with
	// computation (paper §5.3).
	NoOverlap bool
	// NoHBMContention disables the compute/NIC memory interference model
	// (ablation; the default models it).
	NoHBMContention bool
	// CollectTrace records chip 0's per-op execution history in
	// Result.Trace (for timeline rendering and debugging).
	CollectTrace bool
	// TraceAllChips records every chip's execution history in
	// Result.Traces — the whole-cluster counterpart of CollectTrace, for
	// Perfetto export and cross-chip skew analysis. Off by default: it
	// costs O(chips × ops) memory.
	TraceAllChips bool
	// CriticalPath runs the critical-path pass after the simulation: the
	// chain of op executions whose durations sum to the makespan, with
	// the time attributed to launch/sync/transfer/compute (the
	// machine-checkable counterpart of the paper's Fig. 4 decomposition).
	// Results land in Result.CritPath.
	CriticalPath bool
	// Metrics, when set, receives the simulation's telemetry (makespan,
	// per-chip busy times, overlap, op-duration histograms, kernel
	// statistics), labelled with the program's Label. See publishMetrics
	// for the metric inventory.
	Metrics *obs.Registry
	// FabricContention models running on a LOGICAL mesh mapped over a
	// shared fabric (GPU clusters, paper §6): when a chip's two
	// directions communicate concurrently they contend for the same
	// physical links, stretching both by this factor. Zero or one means a
	// physical mesh with independent per-direction links (the TPU case).
	FabricContention float64
	// StepLevel simulates ring AG/RdS/SendRecv collectives one
	// synchronised ring step at a time instead of as atomic operations:
	// more events, and contention sampled per step rather than per
	// operation. Equivalent to the atomic model on uncontended hardware.
	StepLevel bool
	// TiledCompute times compute ops with the tiled chip model (package
	// chipsim: 128×128 systolic tiles, scratchpad blocking, prefetch
	// pipelining) instead of the flat roofline, for ops that carry their
	// GeMM dimensions. Captures the reduced efficiency of fine-grained
	// partial GeMMs the paper measures in §5.3.1.
	TiledCompute bool
	// BidirectionalRings drives both directions of the bi-directional ICI
	// links for ring AG/RdS collectives (collective.AllGatherBidir): two
	// counter-rotating streams halve the synchronised step count to
	// ⌈(P-1)/2⌉. Current TPU runtimes only drive one direction (§5.3.1);
	// this option quantifies the headroom.
	BidirectionalRings bool
	// Faults injects a deterministic fault plan (package fault): degraded
	// links stretch ring steps, stragglers stretch compute, and failures
	// halt the program with a typed Result.Failed diagnosis. A nil or
	// empty plan is a provable no-op — every fault hook short-circuits.
	Faults *fault.Plan
	// FaultReroute lets a ring collective survive a single dead link by
	// detouring its traffic the long way around the ring, at (P-1)× the
	// per-step wire cost. Two or more dead links on one ring still halt.
	FaultReroute bool
}

// Breakdown is the per-chip communication time split of paper Fig. 10.
type Breakdown struct {
	Launch   float64
	Sync     float64
	Transfer float64
}

// Total returns launch + sync + transfer.
func (b Breakdown) Total() float64 { return b.Launch + b.Sync + b.Transfer }

// Result summarises one simulation.
type Result struct {
	// Makespan is the end-to-end execution time of the program.
	Makespan float64
	// ComputeBusy is chip 0's total compute-engine busy time (including
	// HBM slowdowns).
	ComputeBusy float64
	// Comm is chip 0's nominal communication-time breakdown.
	Comm Breakdown
	// CommBusy is chip 0's actual link busy time — the nominal breakdown
	// stretched by HBM contention and barrier skew. This is what a trace
	// on real hardware would measure (Fig. 15 compares it to the model).
	CommBusy float64
	// ExposedComm is the part of chip 0's link busy time not covered by
	// concurrent computation — the communication cost that actually
	// extends the critical path.
	ExposedComm float64
	// Events is the number of simulated op completions (diagnostics).
	Events int
	// Trace is chip 0's execution history (only when
	// Options.CollectTrace is set).
	Trace Trace
	// Traces holds every chip's execution history, indexed by rank (only
	// when Options.TraceAllChips is set).
	Traces []Trace
	// CritPath is the critical-path attribution (only when
	// Options.CriticalPath is set).
	CritPath *CriticalPath
	// Failed is the typed diagnosis of the first fault that halted the
	// program (nil when the program ran to completion). A failed run's
	// Makespan is the time of the last event that did complete.
	Failed *Failure
	// FaultSpans lists the fault plan's intervals clipped to the makespan
	// (only when Options.Faults is a non-empty plan), for trace export.
	FaultSpans []fault.Span
}

const (
	resCompute   = 0
	resRowLink   = 1 // topology.InterRow traffic
	resColLink   = 2 // topology.InterCol traffic
	resDepthLink = 3 // topology.InterDepth traffic (3D programs)
	numRes       = 4
)

// Simulate runs the program on the hardware model and returns the result.
func Simulate(p *sched.Program, c hw.Chip, opts Options) Result {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: %v", err)) // lint:invariant program precondition
	}
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: %v", err)) // lint:invariant program precondition
	}
	s := newSim(p, c, opts)
	s.run()
	return s.result()
}

type sim struct {
	prog *sched.Program
	hw   hw.Chip
	core chipsim.Core
	opts Options
	des  *des.Simulator
	tor  topology.Torus

	nChips     int
	dependents [][]int // op -> ops depending on it
	depsLeft   [][]int // [chip][op]
	done       [][]bool

	queues [][numRes]*resQueue // [chip][resource]

	barriers map[barrierKey]*barrier

	hbmDemand []float64 // active HBM demand per chip (bytes/s)

	// chip-0 accounting
	computeBusy   float64
	commBusy      float64
	comm          Breakdown
	commIntervals []interval
	compIntervals []interval
	events        int
	trace         Trace

	// all-chip accounting (cheap scalars, always tracked)
	computeBusyBy []float64              // per-chip compute-engine busy time
	linkBusyBy    [][numCommDirs]float64 // per-chip per-direction link busy time
	traces        []Trace                // per-chip traces (TraceAllChips)

	// critical-path recording (only when Options.CriticalPath): per
	// (chip, op) instance the start/end times and the instance whose
	// completion triggered the start (-1 for ops started at time zero).
	startAt  []float64
	endAt    []float64
	causeOf  []int
	curCause int

	// durHists caches the per-kind op-duration histograms (Metrics only).
	durHists [8]*obs.Histogram

	// fault state: flt is nil unless Options.Faults is a non-empty plan,
	// so every fault hook short-circuits on a healthy fabric and the run
	// is byte-identical to one without the fault model compiled in.
	flt            *fault.Plan
	failure        *Failure
	faultStretched int64   // ops/steps stretched by a fault factor
	faultExtra     float64 // seconds added by fault stretching
	faultReroutes  int64   // ring ops/steps that detoured a dead link
}

// numCommDirs is the number of link directions tracked per chip
// (topology.InterRow, InterCol, InterDepth).
const numCommDirs = 3

type resQueue struct {
	order   []int // op indices in program order
	granted []bool
	busy    bool
}

type barrierKey struct {
	op   int
	ring int // ring identity: the rank of the ring's first member
}

type barrier struct {
	arrived int
	members int
}

type interval struct{ start, end float64 }

func newSim(p *sched.Program, c hw.Chip, opts Options) *sim {
	n := p.Chips()
	s := &sim{
		prog:     p,
		hw:       c,
		core:     chipsim.FromChip(c),
		opts:     opts,
		des:      des.New(),
		tor:      p.Torus,
		nChips:   n,
		barriers: make(map[barrierKey]*barrier),
	}
	s.dependents = make([][]int, len(p.Ops))
	for i, op := range p.Ops {
		for _, d := range op.Deps {
			s.dependents[d] = append(s.dependents[d], i)
		}
	}
	s.depsLeft = make([][]int, n)
	s.done = make([][]bool, n)
	s.queues = make([][numRes]*resQueue, n)
	s.hbmDemand = make([]float64, n)
	s.computeBusyBy = make([]float64, n)
	s.linkBusyBy = make([][numCommDirs]float64, n)
	if opts.TraceAllChips {
		s.traces = make([]Trace, n)
	}
	if !opts.Faults.Empty() {
		if err := opts.Faults.Validate(n); err != nil {
			panic(fmt.Sprintf("netsim: %v", err)) // lint:invariant fault-plan precondition
		}
		s.flt = opts.Faults
	}
	s.curCause = -1
	if opts.CriticalPath {
		s.startAt = make([]float64, n*len(p.Ops))
		s.endAt = make([]float64, n*len(p.Ops))
		s.causeOf = make([]int, n*len(p.Ops))
		for i := range s.causeOf {
			s.causeOf[i] = -1
		}
	}
	for chip := 0; chip < n; chip++ {
		s.depsLeft[chip] = make([]int, len(p.Ops))
		s.done[chip] = make([]bool, len(p.Ops))
		for r := 0; r < numRes; r++ {
			s.queues[chip][r] = &resQueue{}
		}
		for i, op := range p.Ops {
			s.depsLeft[chip][i] = len(op.Deps)
			q := s.queues[chip][s.resourceOf(op)]
			q.order = append(q.order, i)
			q.granted = append(q.granted, false)
		}
	}
	return s
}

// resourceOf maps an op to the chip resource it occupies.
func (s *sim) resourceOf(op sched.Op) int {
	if s.opts.NoOverlap {
		return resCompute // everything serialises on one engine
	}
	if !op.Kind.IsComm() {
		return resCompute
	}
	switch op.Dir {
	case topology.InterRow:
		return resRowLink
	case topology.InterDepth:
		return resDepthLink
	default:
		return resColLink
	}
}

func (s *sim) run() {
	for chip := 0; chip < s.nChips; chip++ {
		s.tryGrant(chip)
	}
	s.des.Run()
	if s.failure != nil {
		// A recorded failure halts part of the program by design: stranded
		// ops never complete, and the typed diagnosis lands in
		// Result.Failed instead of a deadlock panic.
		return
	}
	// A stuck simulation (ops never completed) indicates a model bug.
	for chip := 0; chip < s.nChips; chip++ {
		for i := range s.prog.Ops {
			if !s.done[chip][i] {
				panic(fmt.Sprintf("netsim: deadlock — chip %d op %d (%s) never completed", chip, i, s.prog.Ops[i].Name)) // lint:invariant deadlock detector
			}
		}
	}
}

// tryGrant advances every resource queue of the chip, granting ops whose
// dependencies are met.
//
// Link controllers issue strictly in program order: every chip of a ring
// must arrive at the same collective, and out-of-order arrival at two
// different barriers would deadlock the ring. The compute engine carries no
// barriers, so it may issue any ready op (earliest in program order first),
// which lets cheap slicing ops and partial GeMMs pipeline freely.
func (s *sim) tryGrant(chip int) {
	for r := 0; r < numRes; r++ {
		q := s.queues[chip][r]
		strict := r != resCompute || s.opts.NoOverlap
		for !q.busy {
			op := -1
			for i, cand := range q.order {
				if q.granted[i] {
					continue
				}
				if s.depsLeft[chip][cand] == 0 {
					op = i
				}
				if strict || op >= 0 {
					break
				}
			}
			if op < 0 {
				break
			}
			q.granted[op] = true
			q.busy = true
			s.grant(chip, q.order[op])
		}
	}
}

// grant starts op on its resource: compute ops run immediately; comm ops
// arrive at their ring barrier and start when the whole ring has arrived.
func (s *sim) grant(chip, opIdx int) {
	op := s.prog.Ops[opIdx]
	if s.flt != nil && s.flt.ChipFailedBy(chip, s.des.Now()) {
		// A fail-stopped chip strands the op: the resource stays busy and
		// nothing downstream of it ever runs.
		s.recordFailure(FailChip, chip, op.Dir, opIdx, op)
		return
	}
	if !op.Kind.IsComm() {
		dur := s.computeDuration(chip, op)
		s.startAccounting(chip, opIdx, op, dur)
		s.des.After(dur, func() { s.complete(chip, opIdx, op, dur) })
		return
	}
	members := s.prog.RingMembers(chip, op.Dir)
	key := barrierKey{op: opIdx, ring: members[0]}
	b := s.barriers[key]
	if b == nil {
		b = &barrier{members: len(members)}
		s.barriers[key] = b
	}
	b.arrived++
	if b.arrived < b.members {
		return
	}
	// Last arrival: the collective starts now on every member.
	delete(s.barriers, key)
	if kind, failedChip, halt := s.faultHalt(members, op); halt {
		// The ring cannot complete a step: every member's link controller
		// stays busy and the collective never finishes.
		s.recordFailure(kind, failedChip, op.Dir, opIdx, op)
		return
	}
	if s.opts.StepLevel && stepwiseKind(op.Kind) {
		s.runCollectiveSteps(members, opIdx, op)
		return
	}
	dur := s.commDuration(members, op)
	for _, m := range members {
		m := m
		s.startAccounting(m, opIdx, op, dur)
		s.des.After(dur, func() { s.complete(m, opIdx, op, dur) })
	}
}

// stepwiseKind reports whether the op decomposes into uniform synchronised
// ring steps (broadcast/reduce pipelines keep their closed-form model even
// in step-level mode; their per-chip roles differ by ring position).
func stepwiseKind(k sched.OpKind) bool {
	switch k {
	case sched.AllGather, sched.ReduceScatter, sched.Shift:
		return true
	}
	return false
}

// runCollectiveSteps simulates a ring collective one synchronised step at a
// time (the SST-like fidelity mode): each step pays t_sync plus the wire
// time of its payload, with HBM and fabric contention sampled per step
// rather than once for the whole operation. All ring members stay in
// lockstep — the defining property of ring AG/RdS on a torus (Fig. 3
// right) — so the steps form a chain of simultaneous events.
func (s *sim) runCollectiveSteps(members []int, opIdx int, op sched.Op) {
	start := s.des.Now()
	// Register HBM demand for the whole span using the nominal rate.
	nominal := s.nominalCommDuration(op)
	demand := s.opHBMDemand(op, nominal)
	for _, m := range members {
		s.hbmDemand[m] += demand
		// The collective starts for every member at barrier release; the
		// cause is the completion that unblocked the last arrival.
		s.noteStart(m, opIdx)
	}
	perStep := s.hw.SyncLatency + op.Bytes/s.hw.LinkBandwidth

	var doStep func(t int)
	doStep = func(t int) {
		if t > 0 {
			// A fault can strike mid-collective: re-check ring viability at
			// every step boundary (step 0 was vetted at barrier release).
			if kind, failedChip, halt := s.faultHalt(members, op); halt {
				s.recordFailure(kind, failedChip, op.Dir, opIdx, op)
				return
			}
		}
		dur := perStep
		if t == 0 {
			dur += s.hw.LaunchOverhead
		}
		// Sample contention at this step's start: the worst ring member's
		// concurrent HBM draw, and fabric contention on logical meshes.
		worst := 1.0
		for _, m := range members {
			if s.opts.NoHBMContention {
				break
			}
			if total := s.hbmDemand[m]; total > s.hw.HBMBandwidth {
				if f := total / s.hw.HBMBandwidth; f > worst {
					worst = f
				}
			}
		}
		if f := s.fabricFactor(members, op); f > worst {
			worst = f
		}
		worst *= s.faultCommStretch(members, op, dur*worst)
		s.des.After(dur*worst, func() {
			if t+1 < s.effSteps(op) {
				doStep(t + 1)
				return
			}
			span := s.des.Now() - start
			for _, m := range members {
				// Withdraw the demand registered above before the shared
				// completion path withdraws its own estimate.
				s.hbmDemand[m] += s.opHBMDemand(op, span) - demand
				s.stepAccounting(m, opIdx, op, start, span)
				s.complete(m, opIdx, op, span)
			}
		})
	}
	doStep(0)
}

// stepAccounting is startAccounting's step-level counterpart, invoked at
// completion when the actual span is known (demand registration and start
// recording already happened at the collective's start).
func (s *sim) stepAccounting(chip, opIdx int, op sched.Op, start, span float64) {
	s.noteBusy(chip, op, span)
	if s.opts.TraceAllChips {
		s.traces[chip] = append(s.traces[chip], TraceEvent{
			Op: opIdx, Name: op.Name, Kind: op.Kind, Dir: op.Dir,
			Start: start, End: start + span,
		})
	}
	if chip != 0 {
		return
	}
	if s.opts.CollectTrace {
		s.trace = append(s.trace, TraceEvent{
			Op: opIdx, Name: op.Name, Kind: op.Kind, Dir: op.Dir,
			Start: start, End: start + span,
		})
	}
	s.comm.Launch += s.hw.LaunchOverhead
	s.comm.Sync += float64(s.effSteps(op)) * s.hw.SyncLatency
	s.comm.Transfer += float64(s.effSteps(op)) * op.Bytes / s.hw.LinkBandwidth
	s.commBusy += span
	s.commIntervals = append(s.commIntervals, interval{start, start + span})
}

func (s *sim) complete(chip, opIdx int, op sched.Op, dur float64) {
	s.events++
	s.hbmDemand[chip] -= s.opHBMDemand(op, dur)
	if s.hbmDemand[chip] < 0 {
		s.hbmDemand[chip] = 0 // guard against float drift
	}
	s.queues[chip][s.resourceOf(op)].busy = false
	s.done[chip][opIdx] = true
	for _, dep := range s.dependents[opIdx] {
		s.depsLeft[chip][dep]--
	}
	// Everything granted while this completion unwinds — same-chip ops
	// whose deps or resource just freed, and ring collectives whose last
	// member just arrived — starts at this instant because of this
	// instance; record it as their critical-path cause.
	prevCause := s.curCause
	if s.opts.CriticalPath {
		id := s.instID(chip, opIdx)
		s.endAt[id] = s.des.Now()
		s.curCause = id
	}
	s.observeDuration(op, dur)
	s.tryGrant(chip)
	s.curCause = prevCause
}

// durationBuckets are the fixed histogram bounds for op durations, spanning
// microseconds (sync-dominated shifts) to tens of milliseconds (full-shard
// collectives and large partial GeMMs). Fixed bounds keep histograms
// mergeable across runs and PRs.
var durationBuckets = []float64{1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2}

// observeDuration records a completed op's duration in the per-kind
// histogram (all chips contribute; counts are integers, so the totals are
// deterministic).
func (s *sim) observeDuration(op sched.Op, dur float64) {
	if s.opts.Metrics == nil {
		return
	}
	k := int(op.Kind)
	if k < 0 || k >= len(s.durHists) {
		return
	}
	if s.durHists[k] == nil {
		s.durHists[k] = s.opts.Metrics.Histogram("netsim_op_duration_seconds", durationBuckets,
			obs.L("prog", s.prog.Label), obs.L("kind", op.Kind.String()))
	}
	s.durHists[k].Observe(dur)
}

// computeDuration applies the compute model — the flat roofline (FLOPS vs
// HBM) or, in tiled mode, the chip-level tile/prefetch pipeline — and the
// contention model to a compute or slice op.
func (s *sim) computeDuration(chip int, op sched.Op) float64 {
	var dur float64
	if s.opts.TiledCompute && op.M > 0 && op.N > 0 && op.K > 0 {
		r, err := s.core.GeMM(op.M, op.N, op.K)
		if err != nil {
			panic(fmt.Sprintf("netsim: tiled compute: %v", err)) // lint:invariant tile-shape precondition
		}
		dur = r.Time
	} else {
		dur = s.hw.GeMMTime(op.FLOPs)
		if hbm := op.HBMBytes / s.hw.HBMBandwidth; hbm > dur {
			dur = hbm
		}
	}
	dur *= s.faultComputeStretch(chip, dur)
	return dur * s.contentionFactor(chip, op, dur)
}

// commDuration computes a collective/shift duration: nominal, stretched by
// the worst HBM contention among ring members and — on logical meshes — by
// fabric contention when the other direction is concurrently active.
func (s *sim) commDuration(members []int, op sched.Op) float64 {
	dur := s.nominalCommDuration(op)
	worst := 1.0
	for _, m := range members {
		if f := s.contentionFactor(m, op, dur); f > worst {
			worst = f
		}
	}
	if f := s.fabricFactor(members, op); f > worst {
		worst = f
	}
	// Fault degradation divides the link's bandwidth, so it multiplies the
	// duration rather than competing with contention for the max.
	return dur * worst * s.faultCommStretch(members, op, dur*worst)
}

// fabricFactor returns the logical-mesh contention stretch: the configured
// factor when any ring member's opposite-direction link is busy at op
// start, 1 otherwise (and always 1 on physical meshes).
func (s *sim) fabricFactor(members []int, op sched.Op) float64 {
	if s.opts.FabricContention <= 1 || s.opts.NoOverlap {
		return 1
	}
	mine := s.resourceOf(op)
	for _, m := range members {
		for r := resRowLink; r < numRes; r++ {
			if r != mine && s.queues[m][r].busy {
				return s.opts.FabricContention
			}
		}
	}
	return 1
}

// nominalCommDuration implements the per-kind timing:
//
//	AG/RdS/Shift: t_launch + Steps·(t_sync + Bytes/bw)
//	Bcast/Reduce: t_launch + Steps·(t_sync + Bytes/(Packets·bw))
//
// where Steps already encodes P-1 ring steps or the P+D-2 pipeline stages.
func (s *sim) nominalCommDuration(op sched.Op) float64 {
	per := op.Bytes / s.hw.LinkBandwidth
	if op.Kind == sched.Broadcast || op.Kind == sched.Reduce {
		per = op.Bytes / float64(op.Packets) / s.hw.LinkBandwidth
	}
	return s.hw.LaunchOverhead + float64(s.effSteps(op))*(s.hw.SyncLatency+per)
}

// effSteps returns the synchronised step count actually executed: halved
// for ring AG/RdS when both link directions are driven.
func (s *sim) effSteps(op sched.Op) int {
	if s.opts.BidirectionalRings &&
		(op.Kind == sched.AllGather || op.Kind == sched.ReduceScatter) {
		return (op.Steps + 1) / 2
	}
	return op.Steps
}

// opHBMDemand is the op's HBM bandwidth draw while active: compute streams
// its operands; the NIC reads outgoing and writes incoming data.
func (s *sim) opHBMDemand(op sched.Op, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	if op.Kind.IsComm() {
		wire := op.Bytes * float64(op.Steps)
		if op.Kind == sched.Broadcast || op.Kind == sched.Reduce {
			wire = op.Bytes * float64(op.Steps) / float64(op.Packets)
		}
		return 2 * wire / dur
	}
	return op.HBMBytes / dur
}

// contentionFactor stretches an op's duration when the chip's concurrent
// HBM demand (including this op) exceeds the HBM bandwidth. The demand is
// sampled at op start — a deliberate first-order approximation of
// processor-sharing, registered with the op so it is withdrawn at
// completion.
func (s *sim) contentionFactor(chip int, op sched.Op, nominalDur float64) float64 {
	if s.opts.NoHBMContention || s.opts.NoOverlap {
		return 1
	}
	demand := s.opHBMDemand(op, nominalDur)
	total := s.hbmDemand[chip] + demand
	if total <= s.hw.HBMBandwidth {
		return 1
	}
	return total / s.hw.HBMBandwidth
}

// startAccounting registers HBM demand, the per-chip busy times and traces,
// and — on chip 0 — the time intervals and breakdown categories.
func (s *sim) startAccounting(chip, opIdx int, op sched.Op, dur float64) {
	s.hbmDemand[chip] += s.opHBMDemand(op, dur)
	now := s.des.Now()
	s.noteStart(chip, opIdx)
	s.noteBusy(chip, op, dur)
	if s.opts.TraceAllChips {
		s.traces[chip] = append(s.traces[chip], TraceEvent{
			Op: opIdx, Name: op.Name, Kind: op.Kind, Dir: op.Dir,
			Start: now, End: now + dur,
		})
	}
	if chip != 0 {
		return
	}
	if s.opts.CollectTrace {
		s.trace = append(s.trace, TraceEvent{
			Op: opIdx, Name: op.Name, Kind: op.Kind, Dir: op.Dir,
			Start: now, End: now + dur,
		})
	}
	if op.Kind.IsComm() {
		s.comm.Launch += s.hw.LaunchOverhead
		s.comm.Sync += float64(s.effSteps(op)) * s.hw.SyncLatency
		per := op.Bytes / s.hw.LinkBandwidth
		if op.Kind == sched.Broadcast || op.Kind == sched.Reduce {
			per = op.Bytes / float64(op.Packets) / s.hw.LinkBandwidth
		}
		s.comm.Transfer += float64(s.effSteps(op)) * per
		s.commBusy += dur
		s.commIntervals = append(s.commIntervals, interval{now, now + dur})
	} else {
		s.computeBusy += dur
		s.compIntervals = append(s.compIntervals, interval{now, now + dur})
	}
}

// instID packs a (chip, op) pair into the flat instance index used by the
// critical-path arrays.
func (s *sim) instID(chip, opIdx int) int { return chip*len(s.prog.Ops) + opIdx }

// noteStart records an op instance's start time and its cause — the
// instance whose completion event triggered this start — when the
// critical-path pass is enabled. Grants happen synchronously inside the
// triggering completion's event callback, so the start time always equals
// the cause's end time and the cause chain is gapless back to time zero.
func (s *sim) noteStart(chip, opIdx int) {
	if !s.opts.CriticalPath {
		return
	}
	id := s.instID(chip, opIdx)
	s.startAt[id] = s.des.Now()
	s.causeOf[id] = s.curCause
}

// noteBusy accrues the op's duration on the chip's busy-time accumulators.
func (s *sim) noteBusy(chip int, op sched.Op, dur float64) {
	if op.Kind.IsComm() {
		s.linkBusyBy[chip][commDirIndex(op.Dir)] += dur
	} else {
		s.computeBusyBy[chip] += dur
	}
}

// commDirIndex maps a direction to its linkBusyBy lane.
func commDirIndex(d topology.Direction) int {
	switch d {
	case topology.InterRow:
		return 0
	case topology.InterDepth:
		return 2
	default:
		return 1
	}
}

func (s *sim) result() Result {
	sortTrace(s.trace)
	for i := range s.traces {
		sortTrace(s.traces[i])
	}
	r := Result{
		Makespan:    s.des.Now(),
		ComputeBusy: s.computeBusy,
		Comm:        s.comm,
		CommBusy:    s.commBusy,
		ExposedComm: exposed(s.commIntervals, s.compIntervals),
		Events:      s.events,
		Trace:       s.trace,
		Traces:      s.traces,
	}
	if s.opts.CriticalPath {
		cp := s.criticalPath()
		r.CritPath = &cp
	}
	if s.flt != nil {
		r.Failed = s.failure
		r.FaultSpans = s.flt.Spans(r.Makespan)
	}
	s.publishMetrics(r)
	return r
}

// publishMetrics writes the simulation's telemetry into Options.Metrics,
// labelled with the program label (plus chip/dir where applicable):
//
//	netsim_makespan_seconds      gauge   — end-to-end program time
//	netsim_ops_completed         counter — op completions across all chips
//	netsim_comm_seconds          gauge   — chip-0 nominal breakdown, by part
//	netsim_exposed_comm_seconds  gauge   — chip-0 non-overlapped comm time
//	netsim_overlap_fraction      gauge   — share of chip-0 link busy time
//	                                       hidden under computation
//	netsim_compute_busy_seconds  gauge   — per-chip compute-engine busy time
//	netsim_link_busy_seconds     gauge   — per-chip per-direction link busy
//	netsim_bubble_seconds        gauge   — per-chip compute idle (pipeline
//	                                       bubbles + exposed communication)
//	netsim_critpath_seconds      gauge   — critical-path attribution by part
//	netsim_op_duration_seconds   histogram — per-kind op durations
//	des_events_processed         counter — kernel events (via des)
//	des_queue_high_water         gauge   — kernel queue depth (via des)
func (s *sim) publishMetrics(r Result) {
	reg := s.opts.Metrics
	if reg == nil {
		return
	}
	prog := obs.L("prog", s.prog.Label)
	reg.Gauge("netsim_makespan_seconds", prog).Set(r.Makespan)
	reg.Counter("netsim_ops_completed", prog).AddInt(int64(r.Events))
	reg.Gauge("netsim_comm_seconds", prog, obs.L("part", "launch")).Set(r.Comm.Launch)
	reg.Gauge("netsim_comm_seconds", prog, obs.L("part", "sync")).Set(r.Comm.Sync)
	reg.Gauge("netsim_comm_seconds", prog, obs.L("part", "transfer")).Set(r.Comm.Transfer)
	reg.Gauge("netsim_exposed_comm_seconds", prog).Set(r.ExposedComm)
	overlap := 0.0
	if r.CommBusy > 0 {
		overlap = (r.CommBusy - r.ExposedComm) / r.CommBusy
	}
	reg.Gauge("netsim_overlap_fraction", prog).Set(overlap)
	// dirNames is indexed by the linkBusyBy lane (see commDirIndex).
	dirNames := [numCommDirs]string{topology.InterRow.String(), topology.InterCol.String(), topology.InterDepth.String()}
	for chip := 0; chip < s.nChips; chip++ {
		cl := obs.L("chip", obs.PadInt(chip, s.nChips))
		reg.Gauge("netsim_compute_busy_seconds", prog, cl).Set(s.computeBusyBy[chip])
		reg.Gauge("netsim_bubble_seconds", prog, cl).Set(r.Makespan - s.computeBusyBy[chip])
		for d := 0; d < numCommDirs; d++ {
			if d == 2 && s.prog.Grid3 == nil {
				continue // depth lane only exists on 3D programs
			}
			reg.Gauge("netsim_link_busy_seconds", prog, cl,
				obs.L("dir", dirNames[d])).Set(s.linkBusyBy[chip][d])
		}
	}
	if r.CritPath != nil {
		a := r.CritPath.Attribution
		reg.Gauge("netsim_critpath_seconds", prog, obs.L("part", "launch")).Set(a.Launch)
		reg.Gauge("netsim_critpath_seconds", prog, obs.L("part", "sync")).Set(a.Sync)
		reg.Gauge("netsim_critpath_seconds", prog, obs.L("part", "transfer")).Set(a.Transfer)
		reg.Gauge("netsim_critpath_seconds", prog, obs.L("part", "compute")).Set(a.Compute)
		reg.Gauge("netsim_critpath_hops", prog).Set(float64(len(r.CritPath.Steps)))
	}
	// Fault telemetry is only emitted when a plan is active, so healthy
	// snapshots stay byte-identical with fault-free builds:
	//
	//	netsim_fault_events        gauge   — plan event counts, by type
	//	netsim_fault_stretched_ops counter — ops/steps a fault factor stretched
	//	netsim_fault_extra_seconds gauge   — time added by fault stretching
	//	netsim_fault_reroutes      counter — ring ops/steps detoured around a
	//	                                     dead link
	//	netsim_failed              gauge   — 1 when the program halted
	if s.flt != nil {
		deg, str, lf, cf := s.flt.Events()
		reg.Gauge("netsim_fault_events", prog, obs.L("type", "link-degrade")).Set(float64(deg))
		reg.Gauge("netsim_fault_events", prog, obs.L("type", "straggler")).Set(float64(str))
		reg.Gauge("netsim_fault_events", prog, obs.L("type", "link-fail")).Set(float64(lf))
		reg.Gauge("netsim_fault_events", prog, obs.L("type", "chip-fail")).Set(float64(cf))
		reg.Counter("netsim_fault_stretched_ops", prog).AddInt(s.faultStretched)
		reg.Gauge("netsim_fault_extra_seconds", prog).Set(s.faultExtra)
		reg.Counter("netsim_fault_reroutes", prog).AddInt(s.faultReroutes)
		failed := 0.0
		if s.failure != nil {
			failed = 1
		}
		reg.Gauge("netsim_failed", prog).Set(failed)
	}
	s.des.PublishMetrics(reg, prog)
}

// exposed returns the measure of ∪comm minus its overlap with ∪compute.
func exposed(comm, compute []interval) float64 {
	cu := merge(comm)
	co := merge(compute)
	total := 0.0
	for _, iv := range cu {
		total += iv.end - iv.start
	}
	// Subtract pairwise overlaps between the two merged (disjoint) sets.
	j := 0
	for _, c := range cu {
		for j < len(co) && co[j].end <= c.start {
			j++
		}
		for k := j; k < len(co) && co[k].start < c.end; k++ {
			lo := maxf(c.start, co[k].start)
			hi := minf(c.end, co[k].end)
			if hi > lo {
				total -= hi - lo
			}
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

func merge(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	out := []interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
