package netsim

import "meshslice/internal/hw"

// Checkpoint I/O cost model. Writing a snapshot record is not simulated as
// discrete events — checkpoint traffic leaves the mesh through the
// HBM→host path, which the ICI fabric model does not carry — but as an
// analytical cost in two parts with different overlap behaviour:
//
//   - a serialization stall: the record's bytes are read out of HBM (the
//     same bandwidth the compute cores use, the paper's only interference
//     point) plus the fixed host-side launch overhead. This blocks the
//     training step.
//   - a drain: the bytes cross the HBM→host link. Drains overlap the next
//     step's compute, so they bound checkpoint cadence (a new snapshot
//     cannot start before the previous drain finishes) without adding to
//     step time.

// DefaultHostBandwidth is the HBM→host link bandwidth assumed when a
// profile does not supply one: 32 GB/s, a PCIe 4.0 x16 host interface.
const DefaultHostBandwidth = 32e9

// CheckpointCost is the modelled cost of writing one chip's checkpoint
// record, split by overlap behaviour.
type CheckpointCost struct {
	// SerializeStall is the time the training step loses: HBM readout of
	// the record plus the launch overhead of issuing the transfer.
	SerializeStall float64
	// DrainTime is the HBM→host transfer time; it overlaps compute but
	// floors the checkpoint interval.
	DrainTime float64
	// Total is their sum — the end-to-end latency until the record is safe
	// on the host.
	Total float64
}

// EstimateCheckpoint models writing one recordBytes-sized checkpoint
// record from a chip. hostBandwidth is the HBM→host link in bytes/second;
// pass 0 for DefaultHostBandwidth.
func EstimateCheckpoint(recordBytes float64, chip hw.Chip, hostBandwidth float64) CheckpointCost {
	if hostBandwidth <= 0 {
		hostBandwidth = DefaultHostBandwidth
	}
	stall := recordBytes/chip.HBMBandwidth + chip.LaunchOverhead
	drain := recordBytes / hostBandwidth
	return CheckpointCost{SerializeStall: stall, DrainTime: drain, Total: stall + drain}
}
