package netsim

import (
	"fmt"

	"meshslice/internal/sched"
)

// Critical-path attribution: the machine-checkable counterpart of the
// paper's Fig. 4 timeline decomposition. The simulator records, for every
// (chip, op) execution, which instance's completion event triggered its
// start (Options.CriticalPath). Because grants happen synchronously inside
// the triggering completion's event callback, each instance's start time
// equals its cause's end time, so following the cause chain backwards from
// the last-finishing instance yields a gapless chain of executions from
// time zero to the makespan. Summing each link's duration — split into the
// paper's launch/sync/transfer/compute cost components — attributes the
// entire end-to-end step time, and the components reconstruct the makespan
// to within float summation error.

// Attribution splits a span of simulated time into the paper's four cost
// components.
type Attribution struct {
	// Launch is per-operation host launch overhead on the path.
	Launch float64
	// Sync is ring-step synchronisation latency (and any barrier wait
	// folded into a collective's stretched duration).
	Sync float64
	// Transfer is wire time of payloads on the path.
	Transfer float64
	// Compute is compute-engine (and slice-copy) time on the path.
	Compute float64
}

// Total returns launch + sync + transfer + compute.
func (a Attribution) Total() float64 {
	return a.Launch + a.Sync + a.Transfer + a.Compute
}

// PathStep is one op execution on the critical path.
type PathStep struct {
	// Chip is the rank the execution ran on.
	Chip int
	// Op indexes the program's op list.
	Op int
	// Name is the op's label (copied for self-contained reports).
	Name string
	// Kind is the op's kind.
	Kind sched.OpKind
	// Start and End bound the execution in simulated seconds.
	Start, End float64
}

// CriticalPath is the chain of op executions that determines the makespan,
// with its time attributed to the four cost components.
type CriticalPath struct {
	// Attribution sums to the makespan (within float tolerance).
	Attribution Attribution
	// Steps lists the chain chronologically.
	Steps []PathStep
}

// criticalPath walks the recorded cause chain backwards from the
// last-finishing instance and attributes each link's duration.
func (s *sim) criticalPath() CriticalPath {
	n := len(s.prog.Ops)
	if n == 0 || s.nChips == 0 {
		return CriticalPath{}
	}
	// The path ends at the instance that finishes last; ties break to the
	// lowest instance id for determinism.
	last := 0
	for id := 1; id < len(s.endAt); id++ {
		if s.endAt[id] > s.endAt[last] { // lint:float-exact strict improvement keeps the lowest-id tie-break deterministic
			last = id
		}
	}
	var cp CriticalPath
	for id := last; id >= 0; id = s.causeOf[id] {
		chip, opIdx := id/n, id%n
		op := s.prog.Ops[opIdx]
		start, end := s.startAt[id], s.endAt[id]
		s.attribute(op, end-start, &cp.Attribution)
		cp.Steps = append(cp.Steps, PathStep{
			Chip: chip, Op: opIdx, Name: op.Name, Kind: op.Kind,
			Start: start, End: end,
		})
		if len(cp.Steps) > len(s.endAt) {
			panic("netsim: critical-path cause chain has a cycle") // lint:invariant causes point strictly backwards in time
		}
	}
	// Reverse into chronological order.
	for i, j := 0, len(cp.Steps)-1; i < j; i, j = i+1, j-1 {
		cp.Steps[i], cp.Steps[j] = cp.Steps[j], cp.Steps[i]
	}
	if len(cp.Steps) > 0 && cp.Steps[0].Start != 0 { // lint:float-exact the chain's root is scheduled at literal t=0; any drift means a recording gap
		// The chain must reach time zero; anything else means a recording
		// gap, which would silently misattribute time.
		panic(fmt.Sprintf("netsim: critical path starts at %g, not 0", cp.Steps[0].Start)) // lint:invariant gapless-chain postcondition
	}
	return cp
}

// attribute splits one execution's duration into the four components. A
// compute or slice op is all compute. A communication op splits in the
// ratio of its nominal cost parts — launch overhead, per-step sync
// latency, per-step wire time — scaled to the actual (contention- and
// skew-stretched) duration, so barrier skew and HBM interference inflate
// the parts proportionally rather than vanishing from the total.
func (s *sim) attribute(op sched.Op, dur float64, a *Attribution) {
	if !op.Kind.IsComm() {
		a.Compute += dur
		return
	}
	steps := float64(s.effSteps(op))
	per := op.Bytes / s.hw.LinkBandwidth
	if op.Kind == sched.Broadcast || op.Kind == sched.Reduce {
		per = op.Bytes / float64(op.Packets) / s.hw.LinkBandwidth
	}
	launch := s.hw.LaunchOverhead
	sync := steps * s.hw.SyncLatency
	transfer := steps * per
	nominal := launch + sync + transfer
	if nominal <= 0 {
		// Degenerate calibration (all comm constants zero): the duration
		// can only be sync-like waiting.
		a.Sync += dur
		return
	}
	scale := dur / nominal
	a.Launch += launch * scale
	a.Sync += sync * scale
	a.Transfer += transfer * scale
}
