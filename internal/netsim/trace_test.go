package netsim

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"meshslice/internal/gemm"
	"meshslice/internal/sched"
	"meshslice/internal/topology"
)

func traceOf(t *testing.T, prog *sched.Program) Trace {
	t.Helper()
	r := Simulate(prog, testHW, Options{CollectTrace: true, NoHBMContention: true})
	if len(r.Trace) == 0 {
		t.Fatalf("no trace collected for %s", prog.Label)
	}
	return r.Trace
}

func TestTraceCoversEveryOp(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 4)
	tr := traceOf(t, prog)
	if len(tr) != len(prog.Ops) {
		t.Errorf("trace has %d events for %d ops", len(tr), len(prog.Ops))
	}
	seen := map[int]bool{}
	for _, e := range tr {
		if e.End < e.Start {
			t.Errorf("event %q ends before it starts", e.Name)
		}
		if seen[e.Op] {
			t.Errorf("op %d traced twice", e.Op)
		}
		seen[e.Op] = true
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	prob := gemm.Problem{M: 1 << 12, N: 4096, K: 4096, Dataflow: gemm.OS}
	prog := sched.CollectiveProgram(prob, topology.NewTorus(2, 2), testHW)
	r := Simulate(prog, testHW, Options{})
	if r.Trace != nil {
		t.Errorf("trace collected without CollectTrace")
	}
}

func TestTraceSortedByStart(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.LS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 4)
	tr := traceOf(t, prog)
	for i := 1; i < len(tr); i++ {
		if tr[i].Start < tr[i-1].Start {
			t.Errorf("trace not sorted at %d", i)
		}
	}
}

func TestTraceBusyTimeMatchesResult(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 2)
	r := Simulate(prog, testHW, Options{CollectTrace: true, NoHBMContention: true})
	// Compute lane busy time equals the reported compute busy time
	// (compute ops never overlap each other on one engine).
	if diff := math.Abs(r.Trace.BusyTime(0) - r.ComputeBusy); diff > 1e-12 {
		t.Errorf("compute lane busy %v != ComputeBusy %v", r.Trace.BusyTime(0), r.ComputeBusy)
	}
	// Link lanes' combined busy time equals CommBusy (lanes are disjoint
	// resources, each serial).
	lanes := r.Trace.BusyTime(1) + r.Trace.BusyTime(2)
	if diff := math.Abs(lanes - r.CommBusy); diff > 1e-12 {
		t.Errorf("link lanes busy %v != CommBusy %v", lanes, r.CommBusy)
	}
}

func TestTimelineRendering(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 4)
	tr := traceOf(t, prog)
	out := tr.Timeline(72)
	for _, want := range []string{"compute", "inter-row", "inter-col", "#", "G"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("timeline has %d lines, want 5:\n%s", lines, out)
	}
}

func TestTimelineDegenerateInputs(t *testing.T) {
	if out := Trace(nil).Timeline(80); !strings.Contains(out, "empty") {
		t.Errorf("nil trace rendered %q", out)
	}
	tr := Trace{{Name: "x", Kind: sched.Compute, Start: 0, End: 1}}
	if out := tr.Timeline(3); !strings.Contains(out, "empty") {
		t.Errorf("narrow width rendered %q", out)
	}
	zero := Trace{{Name: "x", Kind: sched.Compute}}
	if out := zero.Timeline(40); !strings.Contains(out, "empty") {
		t.Errorf("zero-length trace rendered %q", out)
	}
}

func TestTimelineShowsOverlap(t *testing.T) {
	// MeshSlice's signature: compute and communication lanes busy at the
	// same instant somewhere in the steady state.
	prob := gemm.Problem{M: 1 << 16, N: 12288, K: 12288, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(8, 8), testHW, 8)
	tr := traceOf(t, prog)
	overlap := false
	for _, a := range tr {
		if a.Kind != sched.Compute {
			continue
		}
		for _, b := range tr {
			if b.Kind.IsComm() && b.Start < a.End && a.Start < b.End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Errorf("MeshSlice trace shows no comm/compute overlap")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 2)
	r := Simulate(prog, testHW, Options{CollectTrace: true})
	var buf bytes.Buffer
	if err := r.Trace.WriteChromeTrace(&buf, prog.Label); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	var complete, meta int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if e["dur"].(float64) < 0 {
				t.Errorf("negative duration event %v", e)
			}
		case "M":
			meta++
		}
	}
	if complete != len(prog.Ops) {
		t.Errorf("complete events = %d, want %d", complete, len(prog.Ops))
	}
	if meta < 3 { // process name + at least compute/row/col tracks
		t.Errorf("metadata events = %d", meta)
	}
}

func TestChromeTrackMapping(t *testing.T) {
	cases := []struct {
		ev   TraceEvent
		want int
	}{
		{TraceEvent{Kind: sched.Compute}, 0},
		{TraceEvent{Kind: sched.Slice}, 0},
		{TraceEvent{Kind: sched.AllGather, Dir: topology.InterRow}, 1},
		{TraceEvent{Kind: sched.ReduceScatter, Dir: topology.InterCol}, 2},
		{TraceEvent{Kind: sched.Shift, Dir: topology.InterDepth}, 3},
	}
	for i, c := range cases {
		if got := chromeTrack(c.ev); got != c.want {
			t.Errorf("case %d: track %d, want %d", i, got, c.want)
		}
	}
}

func TestDepthTrafficGetsOwnLane(t *testing.T) {
	// Regression: depth-direction comm used to fold into the inter-col
	// lane, corrupting 3D timelines and BusyTime(2).
	tr := Trace{
		{Name: "c", Kind: sched.Compute, Start: 0, End: 1},
		{Name: "col", Kind: sched.AllGather, Dir: topology.InterCol, Start: 0, End: 2},
		{Name: "dep", Kind: sched.Broadcast, Dir: topology.InterDepth, Start: 1, End: 4},
	}
	if got := tr[2].lane(); got != 3 {
		t.Fatalf("depth event lane = %d, want 3", got)
	}
	if got := tr.BusyTime(2); got != 2 {
		t.Errorf("inter-col busy = %v, want 2 (depth traffic leaked in)", got)
	}
	if got := tr.BusyTime(3); got != 3 {
		t.Errorf("inter-depth busy = %v, want 3", got)
	}
}

func TestTimelineRendersDepthLaneFor3DPrograms(t *testing.T) {
	prog := sched.TwoPointFiveDProgram(1<<14, 8192, 8192, gemm.Grid3D{P: 4, C: 2}, testHW)
	tr := traceOf(t, prog)
	if tr.BusyTime(3) <= 0 {
		t.Fatalf("2.5D chip-0 trace has no depth-lane traffic")
	}
	out := tr.Timeline(72)
	if !strings.Contains(out, "inter-dep") {
		t.Errorf("3D timeline missing depth lane:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Errorf("3D timeline has %d lines, want 6:\n%s", lines, out)
	}
}

// decodeTraceEvents unmarshals a Chrome trace and partitions it into
// complete events and (pid, tid) → thread-name metadata.
func decodeTraceEvents(t *testing.T, data []byte) (complete []map[string]any, threads map[[2]int]string, processes map[int]string) {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	threads = map[[2]int]string{}
	processes = map[int]string{}
	for _, e := range events {
		pid := int(e["pid"].(float64))
		switch e["ph"] {
		case "X":
			complete = append(complete, e)
		case "M":
			args := e["args"].(map[string]any)
			name := args["name"].(string)
			switch e["name"] {
			case "thread_name":
				threads[[2]int{pid, int(e["tid"].(float64))}] = name
			case "process_name":
				processes[pid] = name
			}
		}
	}
	return complete, threads, processes
}

func TestWriteChromeTraceValidity(t *testing.T) {
	prog := sched.TwoPointFiveDProgram(1<<14, 8192, 8192, gemm.Grid3D{P: 4, C: 2}, testHW)
	r := Simulate(prog, testHW, Options{CollectTrace: true})
	var buf bytes.Buffer
	if err := r.Trace.WriteChromeTrace(&buf, prog.Label); err != nil {
		t.Fatal(err)
	}
	complete, threads, processes := decodeTraceEvents(t, buf.Bytes())
	if len(processes) != 1 {
		t.Errorf("single-chip trace has %d processes", len(processes))
	}
	wantTrack := map[string]int{
		"compute engine": 0, "inter-row links": 1,
		"inter-col links": 2, "inter-depth links": 3,
	}
	for _, e := range complete {
		if e["dur"].(float64) < 0 {
			t.Errorf("negative duration event %v", e)
		}
		key := [2]int{int(e["pid"].(float64)), int(e["tid"].(float64))}
		name, ok := threads[key]
		if !ok {
			t.Errorf("event %v on unnamed track %v", e["name"], key)
			continue
		}
		if wantTrack[name] != key[1] {
			t.Errorf("track %q has tid %d, want %d", name, key[1], wantTrack[name])
		}
	}
	if _, ok := threads[[2]int{0, 3}]; !ok {
		t.Errorf("2.5D trace missing inter-depth track metadata")
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 2)
	r := Simulate(prog, testHW, Options{CollectTrace: true})
	write := func() []byte {
		var buf bytes.Buffer
		if err := r.Trace.WriteChromeTrace(&buf, prog.Label); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := write(), write(); !bytes.Equal(a, b) {
		t.Errorf("chrome trace serialisation is nondeterministic")
	}
}

func TestWriteClusterChromeTrace(t *testing.T) {
	prob := gemm.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: gemm.OS}
	prog := sched.MeshSliceProgram(prob, topology.NewTorus(4, 4), testHW, 2)
	r := Simulate(prog, testHW, Options{TraceAllChips: true})
	write := func() []byte {
		var buf bytes.Buffer
		if err := WriteClusterChromeTrace(&buf, r.Traces, prog.Label); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	data := write()
	complete, threads, processes := decodeTraceEvents(t, data)
	if len(processes) != prog.Torus.Size() {
		t.Fatalf("cluster trace has %d processes, want one per chip (%d)",
			len(processes), prog.Torus.Size())
	}
	for chip := 0; chip < prog.Torus.Size(); chip++ {
		if _, ok := processes[chip]; !ok {
			t.Errorf("no process metadata for chip %d", chip)
		}
	}
	if want := prog.Torus.Size() * len(prog.Ops); len(complete) != want {
		t.Errorf("cluster trace has %d complete events, want %d", len(complete), want)
	}
	for _, e := range complete {
		if e["dur"].(float64) < 0 {
			t.Errorf("negative duration event %v", e)
		}
		key := [2]int{int(e["pid"].(float64)), int(e["tid"].(float64))}
		if _, ok := threads[key]; !ok {
			t.Errorf("event %v on unnamed track %v", e["name"], key)
		}
	}
	if b := write(); !bytes.Equal(data, b) {
		t.Errorf("cluster trace serialisation is nondeterministic")
	}
}
