package netsim

import (
	"testing"

	"meshslice/internal/hw"
)

func TestEstimateCheckpoint(t *testing.T) {
	chip := hw.TPUv4()
	const bytes = 1e9
	c := EstimateCheckpoint(bytes, chip, 0)
	wantStall := bytes/chip.HBMBandwidth + chip.LaunchOverhead
	if c.SerializeStall != wantStall {
		t.Errorf("SerializeStall = %v, want %v", c.SerializeStall, wantStall)
	}
	if c.DrainTime != bytes/DefaultHostBandwidth {
		t.Errorf("DrainTime = %v, want %v", c.DrainTime, bytes/DefaultHostBandwidth)
	}
	if c.Total != c.SerializeStall+c.DrainTime {
		t.Errorf("Total = %v, want stall+drain = %v", c.Total, c.SerializeStall+c.DrainTime)
	}
	// The drain dominates: the host link is ~40x slower than HBM.
	if c.DrainTime <= c.SerializeStall {
		t.Errorf("drain (%v) should dominate the HBM stall (%v)", c.DrainTime, c.SerializeStall)
	}
	// An explicit host bandwidth overrides the default.
	fast := EstimateCheckpoint(bytes, chip, 2*DefaultHostBandwidth)
	if fast.DrainTime != c.DrainTime/2 {
		t.Errorf("doubled host bandwidth: drain %v, want %v", fast.DrainTime, c.DrainTime/2)
	}
}
