// Package lint is meshlint: a stdlib-only static-analysis suite enforcing
// the project invariants the compiler cannot check. The simulator stack
// (des, netsim, chipsim, costmodel, autotune, obs) must be bit-for-bit
// deterministic, and the functional mesh runtime must follow a strict
// goroutine discipline; each analyzer turns one such prose invariant from
// DESIGN.md into a machine-checked rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// message. String renders the canonical "file:line: [rule] message" form
// the CI grep contract relies on.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one rule. Run receives the whole module so cross-package
// rules (panic-audit's reachability walk) and per-file rules share one
// interface, and reports findings through report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, report func(pos token.Pos, format string, args ...any))
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzeWallclock(),
		analyzeSeededRand(),
		analyzeFloatEq(),
		analyzeGoroutines(),
		analyzePanics(),
		analyzeBufOwnership(),
		analyzeHotpathAlloc(),
		analyzeMapOrder(),
	}
}

// Run executes every analyzer over m and returns the surviving diagnostics
// sorted by position. Findings suppressed by an inline "lint:" directive or
// by an allowlist entry are dropped.
func Run(m *Module, analyzers []*Analyzer, allow *Allowlist) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		rule := a.Name
		a.Run(m, func(pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			if f := m.fileAt(p.Filename); f != nil && f.Allows(rule, p.Line) {
				return
			}
			if allow.Allows(rule, m.relPath(p.Filename), p.Line) {
				return
			}
			diags = append(diags, Diagnostic{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...)})
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return diags
}

// relPath converts an absolute file name to a module-root-relative,
// slash-separated path (the form allowlist entries and diagnostics use).
func (m *Module) relPath(filename string) string {
	if rel, err := filepath.Rel(m.Root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

func (m *Module) fileAt(filename string) *File {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			if f.Name == filename {
				return f
			}
		}
	}
	return nil
}

// eachFile visits every file of every package, with its package.
func (m *Module) eachFile(fn func(p *Package, f *File)) {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			fn(pkg, f)
		}
	}
}

// lastSegment returns the final element of an import path, with any ".test"
// unit suffix stripped, so rules can recognise a package by its name
// regardless of where the module mounts it.
func lastSegment(path string) string {
	path = strings.TrimSuffix(path, ".test")
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Allowlist is the file-based suppression mechanism for adopting rules
// incrementally: one entry per line, "rule path[:line]", where path is a
// module-relative file or directory prefix. Blank lines and #-comments are
// skipped.
type Allowlist struct {
	entries []allowEntry
}

type allowEntry struct {
	rule string
	path string
	line int // 0 means any line
}

// LoadAllowlist parses the allowlist at path; a missing file yields an
// empty (permit-nothing-extra) allowlist so the flag can default to a
// conventional location.
func LoadAllowlist(path string) (*Allowlist, error) {
	al := &Allowlist{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return al, nil
	}
	if err != nil {
		return nil, err
	}
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs \"rule path[:line]\"", path, i+1)
		}
		e := allowEntry{rule: fields[0], path: fields[1]}
		if at := strings.LastIndex(e.path, ":"); at >= 0 {
			n, err := strconv.Atoi(e.path[at+1:])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad line number in %q", path, i+1, fields[1])
			}
			e.line, e.path = n, e.path[:at]
		}
		al.entries = append(al.entries, e)
	}
	return al, nil
}

// Allows reports whether the allowlist suppresses rule at relPath:line.
func (al *Allowlist) Allows(rule, relPath string, line int) bool {
	if al == nil {
		return false
	}
	for _, e := range al.entries {
		if e.rule != rule && e.rule != "*" {
			continue
		}
		if e.path != relPath && !strings.HasPrefix(relPath, strings.TrimSuffix(e.path, "/")+"/") {
			continue
		}
		if e.line != 0 && e.line != line {
			continue
		}
		return true
	}
	return false
}

// walkFile traverses every node of f.AST.
func walkFile(f *File, fn func(n ast.Node) bool) {
	ast.Inspect(f.AST, fn)
}
