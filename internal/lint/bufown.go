package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// buf-ownership is a flow-sensitive mini borrow checker for the arena API
// of the mesh runtime (mesh.AcquireBuf / SendOwned / SendOwnedTo /
// ReleaseBuf / Recv / RecvFrom). The ownership-transfer discipline the
// zero-allocation collectives depend on is:
//
//   - SendOwned(buf) and ReleaseBuf(buf) consume the buffer: any later
//     read, write, re-send, or re-release of the same variable — on ANY
//     path — is a bug (the buffer may already be overwritten by another
//     chip).
//   - A buffer obtained from AcquireBuf must leave the function through
//     exactly one of ReleaseBuf, SendOwned, or a return statement on every
//     path; a path that drops it is a pool leak.
//
// The analyzer runs a forward abstract interpretation over each
// function's CFG with branch merging: a variable's abstract state is a
// set of {owned, sent, released} facts, joins union the sets, and a use
// while any dead fact is present reports "on some path". Reassignment
// revives a variable (the ring pattern: send, then receive into the same
// variable). Aliasing through data structures and closures conservatively
// ends tracking; passing a tracked buffer as a plain call argument is
// treated as a borrow (the collectives' documented contract: arguments
// are never retained).

type ownFlags uint8

const (
	ownOwned ownFlags = 1 << iota
	ownSent
	ownReleased
	ownWaited
)

// ownState is one tracked variable's abstract state.
type ownState struct {
	flags    ownFlags
	acquired token.Pos // AcquireBuf/Start* call position; NoPos for recv/sent-only origins
	deadPos  token.Pos // most recent kill site, for messages
	// handle marks the variable as an async collective Handle (from a
	// Start* call) rather than an arena buffer: it must be discharged by
	// exactly one Wait on every path, and the diagnostics speak in handle
	// vocabulary.
	handle bool
}

// ownVars maps a variable object to its state. It is the dataflow lattice
// element: join is per-variable flag union.
type ownVars map[types.Object]*ownState

// arenaMethods classifies the arena API by method name; receivers must be
// the mesh runtime's Chip or Comm (or a fixture type of the same name),
// so unrelated types with colliding method names stay out of scope.
var arenaRecvTypes = map[string]bool{"Chip": true, "Comm": true, "Mesh": true}

func analyzeBufOwnership() *Analyzer {
	return &Analyzer{
		Name: "buf-ownership",
		Doc: "flow-sensitive ownership checking for the arena buffer API: a buffer is dead after " +
			"SendOwned/ReleaseBuf (no later use, re-send, or double release on any path), an " +
			"AcquireBuf result must be released, sent, or returned on every path, and an async " +
			"collective Handle from a Start* call must be discharged by exactly one Wait on every path",
		Run: runBufOwnership,
	}
}

func runBufOwnership(m *Module, report func(pos token.Pos, format string, args ...any)) {
	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOwnershipBody(m.Fset, p, fd.Body, report)
			// Function literals are separate ownership scopes: a closure
			// capturing a tracked variable ends the outer tracking (see
			// escape handling), and buffers acquired inside the literal are
			// checked against the literal's own CFG.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkOwnershipBody(m.Fset, p, lit.Body, report)
				}
				return true
			})
		}
	})
}

// ownFinding dedups reports across fixed-point iterations.
type ownFinding struct {
	pos token.Pos
	msg string
}

type ownChecker struct {
	pkg      *Package
	fset     *token.FileSet
	findings map[ownFinding]bool
}

func checkOwnershipBody(fset *token.FileSet, p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	if !mentionsArena(p, body) {
		return // fast path: nothing to track
	}
	cfg := buildCFG(p, body)
	oc := &ownChecker{pkg: p, fset: fset, findings: map[ownFinding]bool{}}

	clone := func(s ownVars) ownVars {
		out := make(ownVars, len(s))
		for k, v := range s {
			cp := *v
			out[k] = &cp
		}
		return out
	}
	joinInto := func(dst, src ownVars) bool {
		changed := false
		for k, sv := range src {
			dv, ok := dst[k]
			if !ok {
				cp := *sv
				dst[k] = &cp
				changed = true
				continue
			}
			if merged := dv.flags | sv.flags; merged != dv.flags {
				dv.flags = merged
				changed = true
			}
			if dv.acquired == token.NoPos && sv.acquired != token.NoPos {
				dv.acquired = sv.acquired
				changed = true
			}
			if dv.deadPos == token.NoPos && sv.deadPos != token.NoPos {
				dv.deadPos = sv.deadPos
			}
			if sv.handle && !dv.handle {
				dv.handle = true
				changed = true
			}
		}
		return changed
	}

	// Phase 1: converge quietly.
	in := forwardDataflow(cfg, ownVars{}, clone, joinInto, func(b *cfgBlock, s ownVars) {
		for _, st := range b.nodes {
			oc.stepStmt(st, s, nil)
		}
	})
	// Phase 2: one reporting pass per block over the converged in-states.
	for _, b := range cfg.blocks {
		state, ok := in[b]
		if !ok {
			state = ownVars{}
		}
		s := clone(state)
		for _, st := range b.nodes {
			oc.stepStmt(st, s, oc.record)
		}
	}
	// Leak check: variables still owned at function exit whose value came
	// from AcquireBuf were neither released, sent, nor returned on some path.
	if exit, ok := in[cfg.exit]; ok {
		for _, st := range exit {
			if st.flags&ownOwned == 0 || st.acquired == token.NoPos {
				continue
			}
			if st.handle {
				oc.record(st.acquired, "async handle may leak: some path reaches the end of the function without Wait — the collective's completion (and any panic it carries) goes unobserved until teardown")
			} else {
				oc.record(st.acquired, "buffer from AcquireBuf may leak: some path reaches the end of the function without ReleaseBuf, SendOwned, or returning it")
			}
		}
	}

	keys := make([]ownFinding, 0, len(oc.findings))
	for k := range oc.findings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].msg < keys[j].msg
	})
	for _, k := range keys {
		report(k.pos, "%s", k.msg)
	}
}

func (oc *ownChecker) record(pos token.Pos, format string, args ...any) {
	oc.findings[ownFinding{pos, fmt.Sprintf(format, args...)}] = true
}

// mentionsArena reports whether body calls any arena-API method, cheaply.
func mentionsArena(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "AcquireBuf", "ReleaseBuf", "SendOwned", "SendOwnedTo", "Wait":
				found = true
			default:
				if len(sel.Sel.Name) > 5 && sel.Sel.Name[:5] == "Start" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// report is nil during the convergence phase.
type ownReport func(pos token.Pos, format string, args ...any)

// stepStmt interprets one lowered CFG statement, mutating s.
func (oc *ownChecker) stepStmt(st ast.Stmt, s ownVars, rep ownReport) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		// RHS first (reads), then LHS (defines/revives).
		for _, rhs := range st.Rhs {
			oc.stepExpr(rhs, s, rep)
		}
		if len(st.Lhs) == len(st.Rhs) {
			for i, lhs := range st.Lhs {
				oc.assign(lhs, st.Rhs[i], s)
			}
		} else {
			// Tuple assignment from one call: every LHS is untracked.
			for _, lhs := range st.Lhs {
				oc.assign(lhs, nil, s)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			oc.stepExpr(res, s, rep)
			// Returning a buffer transfers ownership to the caller.
			if id, ok := res.(*ast.Ident); ok {
				if obj := oc.pkg.Info.Uses[id]; obj != nil {
					delete(s, obj)
				}
			}
		}
	case *ast.RangeStmt:
		oc.stepExpr(st.X, s, rep)
		oc.assign(st.Key, nil, s)
		oc.assign(st.Value, nil, s)
	case *ast.ExprStmt:
		oc.stepExpr(st.X, s, rep)
	case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt:
		// Lowered by the CFG builder; only their init/cond fragments appear
		// as standalone statements.
	case *ast.DeferStmt:
		oc.stepExpr(st.Call, s, rep)
	case *ast.GoStmt:
		oc.stepExpr(st.Call, s, rep)
	case *ast.IncDecStmt:
		oc.stepExpr(st.X, s, rep)
	case *ast.SendStmt:
		oc.stepExpr(st.Chan, s, rep)
		oc.stepExpr(st.Value, s, rep)
		// Sending a tracked buffer over a channel is an escape.
		if id, ok := st.Value.(*ast.Ident); ok {
			if obj := oc.pkg.Info.Uses[id]; obj != nil {
				delete(s, obj)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						oc.stepExpr(v, s, rep)
					}
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						oc.assign(name, rhs, s)
					}
				}
			}
		}
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				oc.stepExpr(e, s, rep)
				return false
			}
			return true
		})
	}
}

// assign updates lhs's state from rhs: an arena acquire or receive makes
// it owned, copying a tracked variable copies its state, anything else
// ends tracking.
func (oc *ownChecker) assign(lhs, rhs ast.Expr, s ownVars) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := oc.pkg.Info.Defs[id]
	if obj == nil {
		obj = oc.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	switch kind, pos := oc.classifyOrigin(rhs); kind {
	case "acquire":
		s[obj] = &ownState{flags: ownOwned, acquired: pos}
	case "handle":
		s[obj] = &ownState{flags: ownOwned, acquired: pos, handle: true}
	case "recv":
		s[obj] = &ownState{flags: ownOwned}
	case "copy":
		src := oc.pkg.Info.Uses[rhs.(*ast.Ident)]
		if st, ok := s[src]; ok {
			cp := *st
			s[obj] = &cp
			// A handle assignment is a MOVE: the Wait obligation travels
			// with the value (the pipelined rotation h = hNext), it is not
			// duplicated.
			if st.handle {
				delete(s, src)
			}
			return
		}
		delete(s, obj)
	default:
		delete(s, obj)
	}
}

// classifyOrigin decides what owning state an assignment RHS confers.
func (oc *ownChecker) classifyOrigin(rhs ast.Expr) (string, token.Pos) {
	switch rhs := rhs.(type) {
	case *ast.CallExpr:
		if name, okRecv := oc.arenaCall(rhs); okRecv {
			switch name {
			case "AcquireBuf":
				return "acquire", rhs.Pos()
			case "Recv", "RecvFrom":
				return "recv", rhs.Pos()
			}
		}
		if oc.handleCall(rhs) {
			return "handle", rhs.Pos()
		}
	case *ast.Ident:
		return "copy", token.NoPos
	}
	return "", token.NoPos
}

// handleCall reports whether call is a Start* constructor returning an
// async collective *Handle (mesh.Comm.StartAsync, collective.Start*Into,
// or a fixture with the same shape). Classification is by result type, so
// unrelated Start-prefixed functions stay out of scope.
func (oc *ownChecker) handleCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if len(name) < 5 || name[:5] != "Start" {
		return false
	}
	t := oc.pkg.Info.TypeOf(call)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Handle"
}

// waitCall returns the receiver identifier when call is Handle.Wait().
func (oc *ownChecker) waitCall(call *ast.CallExpr) (*ast.Ident, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return nil, false
	}
	fn, ok := oc.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Handle" {
		return nil, false
	}
	id, _ := sel.X.(*ast.Ident)
	return id, true
}

// arenaCall reports the method name when call is an arena-API method call
// on a Chip/Comm/Mesh receiver.
func (oc *ownChecker) arenaCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "AcquireBuf", "ReleaseBuf", "SendOwned", "SendOwnedTo", "Recv", "RecvFrom":
	default:
		return "", false
	}
	fn, ok := oc.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !arenaRecvTypes[named.Obj().Name()] {
		return "", false
	}
	return sel.Sel.Name, true
}

// stepExpr walks an expression, handling arena calls and flagging uses of
// dead variables. Function literals are opaque: capturing a tracked
// variable ends its tracking (the closure's lifetime is unknowable here).
func (oc *ownChecker) stepExpr(e ast.Expr, s ownVars, rep ownReport) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := oc.waitCall(e); ok {
			if id != nil {
				oc.waitKill(id, s, rep)
			} else {
				oc.stepExpr(e.Fun.(*ast.SelectorExpr).X, s, rep)
			}
			return
		}
		if name, ok := oc.arenaCall(e); ok {
			sel := e.Fun.(*ast.SelectorExpr)
			oc.stepExpr(sel.X, s, rep) // receiver is a plain read
			switch name {
			case "SendOwned", "SendOwnedTo":
				// Last argument is the buffer being handed off.
				for i, arg := range e.Args {
					if i < len(e.Args)-1 {
						oc.stepExpr(arg, s, rep)
					}
				}
				oc.kill(e.Args[len(e.Args)-1], ownSent, name, s, rep)
				return
			case "ReleaseBuf":
				oc.kill(e.Args[0], ownReleased, name, s, rep)
				return
			default: // AcquireBuf, Recv, RecvFrom: plain argument reads
				for _, arg := range e.Args {
					oc.stepExpr(arg, s, rep)
				}
				return
			}
		}
		oc.stepExpr(e.Fun, s, rep)
		for _, arg := range e.Args {
			oc.stepExpr(arg, s, rep)
		}
	case *ast.FuncLit:
		// Capturing a tracked variable hands it to the closure for good.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := oc.pkg.Info.Uses[id]; obj != nil {
					delete(s, obj)
				}
			}
			return true
		})
	case *ast.Ident:
		oc.use(e, s, rep)
	case *ast.SelectorExpr:
		oc.stepExpr(e.X, s, rep)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			oc.stepExpr(el, s, rep)
			// Storing a tracked buffer into a composite is an escape.
			if id, ok := el.(*ast.Ident); ok {
				if obj := oc.pkg.Info.Uses[id]; obj != nil {
					delete(s, obj)
				}
			}
		}
	default:
		var walked bool
		ast.Inspect(e, func(n ast.Node) bool {
			if !walked {
				walked = true // skip the root, walk children
				return true
			}
			if sub, ok := n.(ast.Expr); ok {
				oc.stepExpr(sub, s, rep)
				return false
			}
			return true
		})
	}
}

// use flags a read of a maybe-dead variable.
func (oc *ownChecker) use(id *ast.Ident, s ownVars, rep ownReport) {
	obj := oc.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	st, ok := s[obj]
	if !ok || rep == nil {
		return
	}
	if st.flags&ownSent != 0 {
		rep(id.Pos(), "use of %q after SendOwned: ownership was transferred on some path (sent at %s), the receiver may already be overwriting it", id.Name, oc.posString(st.deadPos))
	} else if st.flags&ownReleased != 0 {
		rep(id.Pos(), "use of %q after ReleaseBuf: the buffer was returned to the pool on some path (released at %s) and may be handed to another chip", id.Name, oc.posString(st.deadPos))
	}
}

// kill processes the buffer argument of SendOwned/ReleaseBuf: it reports
// re-sends and double releases, then marks the variable dead.
func (oc *ownChecker) kill(arg ast.Expr, dead ownFlags, method string, s ownVars, rep ownReport) {
	id, ok := arg.(*ast.Ident)
	if !ok {
		oc.stepExpr(arg, s, rep)
		return
	}
	obj := oc.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	st, ok := s[obj]
	if ok && rep != nil {
		switch {
		case st.flags&ownSent != 0 && dead == ownSent:
			rep(id.Pos(), "%q sent with SendOwned twice: ownership was already transferred on some path (sent at %s)", id.Name, oc.posString(st.deadPos))
		case st.flags&ownSent != 0:
			rep(id.Pos(), "ReleaseBuf of %q after SendOwned: the buffer now belongs to the receiver (sent at %s)", id.Name, oc.posString(st.deadPos))
		case st.flags&ownReleased != 0 && dead == ownReleased:
			rep(id.Pos(), "double ReleaseBuf of %q: the buffer was already released on some path (released at %s)", id.Name, oc.posString(st.deadPos))
		case st.flags&ownReleased != 0:
			rep(id.Pos(), "SendOwned of %q after ReleaseBuf: the pool may already have handed the buffer to another chip (released at %s)", id.Name, oc.posString(st.deadPos))
		}
	}
	if ok {
		st.flags = (st.flags &^ ownOwned) | dead
		st.deadPos = id.Pos()
	} else {
		s[obj] = &ownState{flags: dead, deadPos: id.Pos()}
	}
}

// waitKill processes Handle.Wait(): it reports a double Wait, then marks
// the handle discharged.
func (oc *ownChecker) waitKill(id *ast.Ident, s ownVars, rep ownReport) {
	obj := oc.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	st, ok := s[obj]
	if ok && rep != nil && st.flags&ownWaited != 0 {
		rep(id.Pos(), "%q waited twice: the handle was already discharged on some path (waited at %s)", id.Name, oc.posString(st.deadPos))
	}
	if ok {
		st.flags = (st.flags &^ ownOwned) | ownWaited
		st.deadPos = id.Pos()
		st.handle = true
	} else {
		s[obj] = &ownState{flags: ownWaited, deadPos: id.Pos(), handle: true}
	}
}

// posString renders a kill site compactly for diagnostics ("line 12").
func (oc *ownChecker) posString(pos token.Pos) string {
	if pos == token.NoPos {
		return "an earlier point"
	}
	return fmt.Sprintf("line %d", oc.fset.Position(pos).Line)
}
