package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the per-function dataflow core: a basic-block control-flow
// graph over ast statements, a forward abstract-interpretation driver with
// branch merging, and a "doomed block" classification (blocks from which
// every path ends in panic). It is deliberately an approximation — goto is
// treated as an early exit, select/switch cases all merge — but it is
// precise enough for the flow-sensitive analyzers (buf-ownership,
// hotpath-alloc) on this codebase's control-flow shapes, and it only
// depends on the standard library.

// cfgBlock is one basic block: a maximal run of statements with a single
// entry, executed in order, followed by edges to successor blocks. A
// *ast.RangeStmt appears as the sole "header" node of its loop-header
// block so transfer functions can model the per-iteration key/value
// assignment.
type cfgBlock struct {
	index int
	nodes []ast.Stmt
	succs []*cfgBlock
	// panics marks a block terminated by a call to the panic builtin.
	panics bool
}

// funcCFG is the control-flow graph of one function body. exit is a
// synthetic empty block every return (and normal fall-off) flows to.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// cfgBuilder tracks loop/switch targets while lowering statements.
type cfgBuilder struct {
	pkg    *Package
	cfg    *funcCFG
	breaks []branchTarget // innermost last
	conts  []branchTarget
}

type branchTarget struct {
	label string
	block *cfgBlock
}

// target resolves a break/continue to its destination block: the
// innermost enclosing loop/switch for an unlabeled branch, the matching
// labeled construct otherwise.
func (b *cfgBuilder) target(stack []branchTarget, label *ast.Ident) *cfgBlock {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// buildCFG lowers body into a funcCFG. pkg supplies type information used
// to recognise panic calls.
func buildCFG(pkg *Package, body *ast.BlockStmt) *funcCFG {
	cfg := &funcCFG{}
	b := &cfgBuilder{pkg: pkg, cfg: cfg}
	cfg.entry = b.newBlock()
	cfg.exit = b.newBlock()
	last := b.stmts(cfg.entry, body.List)
	if last != nil {
		edge(last, cfg.exit)
	}
	return cfg
}

// stmts lowers a statement list starting in cur; it returns the block
// control falls out of, or nil if control never falls through (return,
// panic, break on every path).
func (b *cfgBuilder) stmts(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator; lower it anyway (it may contain
			// findings) into an unreachable block.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// stmt lowers one statement; label is the statement's label, if any.
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt, label string) *cfgBlock {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		edge(cur, b.cfg.exit)
		return nil

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.target(b.breaks, s.Label); t != nil {
				edge(cur, t)
			} else {
				edge(cur, b.cfg.exit)
			}
		case token.CONTINUE:
			if t := b.target(b.conts, s.Label); t != nil {
				edge(cur, t)
			} else {
				edge(cur, b.cfg.exit)
			}
		case token.FALLTHROUGH:
			// Handled by the switch lowering (cases already merge); treat
			// as fall-off so the next case body is a successor via the join.
			return cur
		default: // goto: treat as early exit (none in this codebase)
			edge(cur, b.cfg.exit)
		}
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, &ast.ExprStmt{X: s.Cond})
		join := b.newBlock()
		then := b.newBlock()
		edge(cur, then)
		if last := b.stmts(then, s.Body.List); last != nil {
			edge(last, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			edge(cur, els)
			if last := b.stmt(els, s.Else, ""); last != nil {
				edge(last, join)
			}
		} else {
			edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, &ast.ExprStmt{X: s.Cond})
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		edge(post, head)
		body := b.newBlock()
		edge(head, body)
		if s.Cond != nil {
			edge(head, after)
		}
		b.breaks = append(b.breaks, branchTarget{label, after})
		b.conts = append(b.conts, branchTarget{label, post})
		if last := b.stmts(body, s.Body.List); last != nil {
			edge(last, post)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.nodes = append(head.nodes, s) // header node: models key/value assignment
		edge(cur, head)
		after := b.newBlock()
		edge(head, after)
		body := b.newBlock()
		edge(head, body)
		b.breaks = append(b.breaks, branchTarget{label, after})
		b.conts = append(b.conts, branchTarget{label, head})
		if last := b.stmts(body, s.Body.List); last != nil {
			edge(last, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, &ast.ExprStmt{X: s.Tag})
		}
		return b.switchBody(cur, s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchBody(cur, s.Body, label, true)

	case *ast.SelectStmt:
		return b.switchBody(cur, s.Body, label, false)

	default:
		// Straight-line statements: expressions, assignments, declarations,
		// defers, go statements, sends, inc/dec.
		cur.nodes = append(cur.nodes, s)
		if isPanicStmt(b.pkg, s) {
			cur.panics = true
			return nil
		}
		return cur
	}
}

// switchBody lowers the clause list of a switch/type-switch/select. When
// hasDefaultFallthrough is true and no default clause exists, control may
// skip every case.
func (b *cfgBuilder) switchBody(cur *cfgBlock, body *ast.BlockStmt, label string, canSkip bool) *cfgBlock {
	join := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, join})
	hasDefault := false
	var caseBodies [][]ast.Stmt
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				cur.nodes = append(cur.nodes, &ast.ExprStmt{X: e})
			}
			caseBodies = append(caseBodies, c.Body)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			blk := []ast.Stmt{}
			if c.Comm != nil {
				blk = append(blk, c.Comm)
			}
			caseBodies = append(caseBodies, append(blk, c.Body...))
		}
	}
	var bodyBlocks []*cfgBlock
	for _, stmts := range caseBodies {
		blk := b.newBlock()
		bodyBlocks = append(bodyBlocks, blk)
		edge(cur, blk)
		if last := b.stmts(blk, stmts); last != nil {
			edge(last, join)
		}
	}
	// Approximate fallthrough: each case body may also flow into the next.
	for i := 0; i+1 < len(bodyBlocks); i++ {
		if containsFallthrough(caseBodies[i]) {
			edge(bodyBlocks[i], bodyBlocks[i+1])
		}
	}
	if canSkip && !hasDefault {
		edge(cur, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return join
}

func containsFallthrough(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			return true
		}
	}
	return false
}

// isPanicStmt reports whether s is a direct call to the panic builtin.
func isPanicStmt(pkg *Package, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// doomed returns the set of blocks from which every path terminates in a
// panic (no path reaches the exit block). Allocation checks skip these
// blocks: constructing a panic message is not a hot-path allocation.
func (g *funcCFG) doomed() map[*cfgBlock]bool {
	reachExit := map[*cfgBlock]bool{}
	// Reverse BFS from exit.
	preds := map[*cfgBlock][]*cfgBlock{}
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	queue := []*cfgBlock{g.exit}
	reachExit[g.exit] = true
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, p := range preds[blk] {
			if !reachExit[p] {
				reachExit[p] = true
				queue = append(queue, p)
			}
		}
	}
	doomed := map[*cfgBlock]bool{}
	for _, blk := range g.blocks {
		if !reachExit[blk] {
			doomed[blk] = true
		}
	}
	return doomed
}

// doomedIntervals returns the source intervals of every statement lowered
// into a doomed block, for position-based exemption checks.
func (g *funcCFG) doomedIntervals() []posInterval {
	doomed := g.doomed()
	var out []posInterval
	for _, blk := range g.blocks {
		if !doomed[blk] {
			continue
		}
		for _, n := range blk.nodes {
			out = append(out, posInterval{n.Pos(), n.End()})
		}
	}
	return out
}

type posInterval struct{ lo, hi token.Pos }

func (ivs posIntervals) contains(p token.Pos) bool {
	for _, iv := range ivs {
		if iv.lo <= p && p < iv.hi {
			return true
		}
	}
	return false
}

type posIntervals []posInterval

// forwardDataflow runs a forward abstract interpretation over g to a fixed
// point, then returns the converged in-state of every block. S is the
// abstract state; the analyzer supplies:
//
//	clone    — deep copy, so transfer can mutate freely
//	joinInto — merge src into dst, reporting whether dst changed
//	transfer — interpret one block's statements, mutating the state
//
// Branch merging happens at block joins via joinInto; loops iterate until
// states stop changing, which requires joinInto to be monotone over a
// finite lattice.
func forwardDataflow[S any](g *funcCFG, entry S, clone func(S) S, joinInto func(dst, src S) bool, transfer func(b *cfgBlock, s S)) map[*cfgBlock]S {
	in := map[*cfgBlock]S{g.entry: entry}
	queue := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		queued[blk] = false
		out := clone(in[blk])
		transfer(blk, out)
		for _, s := range blk.succs {
			cur, ok := in[s]
			changed := false
			if !ok {
				in[s] = clone(out)
				changed = true
			} else {
				changed = joinInto(cur, out)
			}
			if changed && !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}
