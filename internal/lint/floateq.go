package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func analyzeFloatEq() *Analyzer {
	return &Analyzer{
		Name: "float-eq",
		Doc: "flag == / != between floating-point operands in non-test code; compare through a " +
			"tolerance (tensor.AlmostEqual) or annotate deliberate exact comparisons with lint:float-exact",
		Run: runFloatEq,
	}
}

func runFloatEq(m *Module, report func(pos token.Pos, format string, args ...any)) {
	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		walkFile(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(bin.X)) && !isFloat(p.Info.TypeOf(bin.Y)) {
				return true
			}
			report(bin.OpPos, "floating-point %s comparison; use a tolerance (tensor.AlmostEqual) or mark deliberate exact equality with a lint:float-exact comment",
				bin.Op)
			return true
		})
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
