package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// randConstructors are the package-level math/rand functions that build an
// explicitly seeded generator rather than consuming the shared global one;
// they are exactly what the rule steers code toward.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func analyzeSeededRand() *Analyzer {
	return &Analyzer{
		Name: "seeded-rand",
		Doc: "forbid the global math/rand top-level functions (rand.Float64, rand.Intn, ...) in " +
			"non-test code; thread an explicitly seeded *rand.Rand so functional runs are reproducible",
		Run: runSeededRand,
	}
}

func runSeededRand(m *Module, report func(pos token.Pos, format string, args ...any)) {
	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		walkFile(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand are the sanctioned form; only the
			// package-level functions hit the shared global source.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randConstructors[obj.Name()] {
				return true
			}
			report(call.Pos(), "rand.%s draws from the global math/rand source; thread an explicitly seeded *rand.Rand instead",
				obj.Name())
			return true
		})
	})
}
