package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Module is the unit meshlint analyzes: every package under one go.mod,
// parsed and type-checked, plus the lint directives found in comments.
//
// The loader is deliberately stdlib-only (go/parser + go/types + the
// "source" go/importer for standard-library dependencies): the whole point
// of the lint suite is to guard determinism invariants, so its own
// behaviour must not depend on tools outside the pinned toolchain.
type Module struct {
	Root     string // absolute directory containing go.mod
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // sorted by import path; test units follow their base

	// callGraph caches the cross-package static call graph shared by the
	// interprocedural analyzers (see Module.CallGraph).
	callGraph *CallGraph
}

// Package is one type-checked compilation unit. A directory with in-package
// _test.go files yields a single unit containing both; an external _test
// package yields its own unit.
type Package struct {
	Path  string // import path ("meshslice/internal/mesh"); external test units get a ".test" suffix
	Dir   string
	Name  string
	Files []*File
	Types *types.Package
	Info  *types.Info
}

// File is one parsed source file plus its lint directives.
type File struct {
	Name string // absolute path
	AST  *ast.File
	Test bool // *_test.go
	// allow maps a line number to the rules suppressed on that line by a
	// "lint:" comment directive (the directive's own line and the next).
	allow map[int][]string
	// hotpath maps a line number to true when a "lint:hotpath" directive
	// marks it (the directive's own line and the next): a function whose
	// declaration starts on a marked line is a hot-path root for the
	// hotpath-alloc analyzer.
	hotpath map[int]bool
}

// HotpathAt reports whether a lint:hotpath directive marks the given line.
func (f *File) HotpathAt(line int) bool { return f.hotpath[line] }

// Allows reports whether a directive in f suppresses rule at line.
func (f *File) Allows(rule string, line int) bool {
	for _, r := range f.allow[line] {
		if r == rule || r == "*" {
			return true
		}
	}
	return false
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule parses and type-checks every package under root (which must
// contain a go.mod). Type errors abort the load: analyzers must only ever
// run over code the compiler accepts, otherwise their reports are noise.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modData, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", abs, err)
	}
	match := moduleLineRE.FindSubmatch(modData)
	if match == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	ld := newLoader(abs, string(match[1]))
	if err := ld.discover(); err != nil {
		return nil, err
	}
	return ld.check()
}

// LoadPackage parses and type-checks the single directory dir as import
// path path, resolving only standard-library imports. The returned Module
// has path's parent as its module path, making the loaded package double as
// the API root for root-sensitive analyzers — exactly what the golden-file
// fixtures under testdata/ need.
func LoadPackage(dir, path string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(abs, path)
	ld.dirs[path] = abs
	return ld.check()
}

type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	dirs    map[string]string // import path -> directory
	parsed  map[string]*dirFiles
	checked map[string]*Package // base units by import path
	inCheck map[string]bool     // cycle guard
	std     types.Importer
	errs    []error
}

type dirFiles struct {
	base, inTest, extTest []*File // by package-name suffix
	name                  string  // base package name
}

func newLoader(root, modPath string) *loader {
	l := &loader{
		root:    root,
		modPath: modPath,
		fset:    token.NewFileSet(),
		dirs:    map[string]string{},
		parsed:  map[string]*dirFiles{},
		checked: map[string]*Package{},
		inCheck: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// discover maps every directory holding .go files to its import path.
func (l *loader) discover() error {
	return filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = dir
		return nil
	})
}

func (l *loader) parseDir(ip string) (*dirFiles, error) {
	if df, ok := l.parsed[ip]; ok {
		return df, nil
	}
	dir := l.dirs[ip]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	df := &dirFiles{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		astf, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		allow, hot := directives(l.fset, astf)
		f := &File{
			Name:    full,
			AST:     astf,
			Test:    strings.HasSuffix(e.Name(), "_test.go"),
			allow:   allow,
			hotpath: hot,
		}
		switch {
		case strings.HasSuffix(astf.Name.Name, "_test"):
			df.extTest = append(df.extTest, f)
		case f.Test:
			df.inTest = append(df.inTest, f)
		default:
			df.base = append(df.base, f)
			df.name = astf.Name.Name
		}
	}
	l.parsed[ip] = df
	return df, nil
}

// Import implements types.Importer: module-internal paths recurse into the
// loader (base unit only, mirroring how go test compiles dependencies
// without their test files); everything else is delegated to the
// standard-library source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
		return l.std.Import(path)
	}
	pkg, err := l.base(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// base type-checks the import path's non-test files, memoized.
func (l *loader) base(ip string) (*Package, error) {
	if pkg, ok := l.checked[ip]; ok {
		return pkg, nil
	}
	if l.inCheck[ip] {
		return nil, fmt.Errorf("lint: import cycle through %s", ip)
	}
	if _, ok := l.dirs[ip]; !ok {
		return nil, fmt.Errorf("lint: no directory for import path %s", ip)
	}
	l.inCheck[ip] = true
	defer delete(l.inCheck, ip)
	df, err := l.parseDir(ip)
	if err != nil {
		return nil, err
	}
	pkg, err := l.typeCheck(ip, df.base)
	if err != nil {
		return nil, err
	}
	l.checked[ip] = pkg
	return pkg, nil
}

func (l *loader) typeCheck(ip string, files []*File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	tpkg, err := conf.Check(ip, l.fset, asts, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	name := ""
	if len(files) > 0 {
		name = files[0].AST.Name.Name
	}
	return &Package{Path: ip, Dir: l.dirs[ip], Name: name, Files: files, Types: tpkg, Info: info}, nil
}

// check assembles the final module: for every discovered directory, the
// analysis unit is base+in-package-test files type-checked together, plus a
// separate unit for any external _test package.
func (l *loader) check() (*Module, error) {
	paths := make([]string, 0, len(l.dirs))
	for ip := range l.dirs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)

	m := &Module{Root: l.root, Path: l.modPath, Fset: l.fset}
	for _, ip := range paths {
		df, err := l.parseDir(ip)
		if err != nil {
			return nil, err
		}
		if len(df.base) > 0 {
			if _, err := l.base(ip); err != nil {
				return nil, err
			}
		}
		switch {
		case len(df.inTest) > 0:
			// Re-check base and in-package tests as one unit so analyzers
			// see test code with full type information; importers still get
			// the memoized test-free package.
			unit, err := l.typeCheck(ip, append(append([]*File{}, df.base...), df.inTest...))
			if err != nil {
				return nil, err
			}
			m.Packages = append(m.Packages, unit)
		case len(df.base) > 0:
			m.Packages = append(m.Packages, l.checked[ip])
		}
		if len(df.extTest) > 0 {
			unit, err := l.typeCheck(ip+".test", df.extTest)
			if err != nil {
				return nil, err
			}
			unit.Dir = l.dirs[ip]
			m.Packages = append(m.Packages, unit)
		}
	}
	return m, nil
}

// directives extracts "lint:" comment directives from a parsed file. A
// directive suppresses the named rules on its own line and the next, so
// both trailing and whole-line-above placements work:
//
//	panic("impossible") // lint:invariant guarded by Validate
//	// lint:allow float-eq sort tie-break must be exact
//	if a.t != b.t {
//
// Recognised forms: "lint:invariant [reason]" (suppresses panic-audit),
// "lint:float-exact [reason]" (suppresses float-eq),
// "lint:allow rule[,rule...] [reason]", and "lint:hotpath [reason]"
// (marks the function declared on this line or the next as a hot-path
// root for hotpath-alloc — an annotation, not a suppression).
func directives(fset *token.FileSet, f *ast.File) (map[int][]string, map[int]bool) {
	allow := map[int][]string{}
	hot := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:"))
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			var rules []string
			switch fields[0] {
			case "invariant":
				rules = []string{"panic-audit"}
			case "float-exact":
				rules = []string{"float-eq"}
			case "allow":
				if len(fields) > 1 {
					rules = strings.Split(fields[1], ",")
				}
			case "hotpath":
				hot[line] = true
				hot[line+1] = true
				continue
			}
			allow[line] = append(allow[line], rules...)
			allow[line+1] = append(allow[line+1], rules...)
		}
	}
	return allow, hot
}
