package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// simPackages are the packages whose only clock is the discrete-event
// simulator's: any wall-clock read inside them breaks bit-for-bit
// reproducibility of simulated results.
var simPackages = map[string]bool{
	"des":       true,
	"netsim":    true,
	"chipsim":   true,
	"costmodel": true,
	"autotune":  true,
	"obs":       true,
	"serve":     true,
}

// wallclockFuncs are the package time functions that observe or depend on
// real time. Pure constructors/constants (time.Duration arithmetic,
// time.Unix on a given value) stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func analyzeWallclock() *Analyzer {
	return &Analyzer{
		Name: "no-wallclock",
		Doc: "forbid wall-clock reads (time.Now, time.Sleep, time.Since, ...) in the " +
			"simulator packages (des, netsim, chipsim, costmodel, autotune, obs, serve); simulated time only",
		Run: runWallclock,
	}
}

func runWallclock(m *Module, report func(pos token.Pos, format string, args ...any)) {
	m.eachFile(func(p *Package, f *File) {
		if f.Test || !simPackages[lastSegment(p.Path)] {
			return
		}
		walkFile(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if wallclockFuncs[obj.Name()] {
				report(call.Pos(), "time.%s reads the wall clock inside simulator package %s; use the simulated clock (des.Simulator.Now)",
					obj.Name(), lastSegment(p.Path))
			}
			return true
		})
	})
}
