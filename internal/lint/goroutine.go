package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func analyzeGoroutines() *Analyzer {
	return &Analyzer{
		Name: "goroutine-discipline",
		Doc: "flag go statements whose closure captures a loop variable instead of taking it as an " +
			"argument, and goroutines launched without a sync.WaitGroup wait or channel join in the " +
			"enclosing function (the classic SPMD-runtime leak)",
		Run: runGoroutines,
	}
}

func runGoroutines(m *Module, report func(pos token.Pos, format string, args ...any)) {
	m.eachFile(func(p *Package, f *File) {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(p, fd.Body, report)
		}
	})
}

func checkGoroutines(p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	var goStmts []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}
	joined := hasJoin(p, body)
	for _, g := range goStmts {
		if !joined {
			report(g.Pos(), "goroutine launched without a sync.WaitGroup wait or channel join in the enclosing function; unjoined goroutines leak past SPMD runs")
		}
		for _, captured := range capturedLoopVars(p, body, g) {
			report(g.Pos(), "goroutine closure captures loop variable %q; pass it as an argument so each chip goroutine owns its value",
				captured)
		}
	}
}

// hasJoin reports whether body contains evidence that launched goroutines
// are waited for: a (*sync.WaitGroup).Wait call, a channel receive, or a
// range over a channel.
func hasJoin(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj, ok := p.Info.Uses[sel.Sel].(*types.Func); ok &&
					obj.Name() == "Wait" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					// Both (*WaitGroup).Wait and (*Cond).Wait live in sync,
					// but only the WaitGroup one is a join.
					if recv := recvNamed(obj); recv == "WaitGroup" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// capturedLoopVars returns the names of for/range loop variables, declared
// between body and g, that g's function literal references directly instead
// of receiving as arguments.
func capturedLoopVars(p *Package, body *ast.BlockStmt, g *ast.GoStmt) []string {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	// Collect the loop variables of every for/range statement enclosing g.
	loopVars := map[types.Object]string{}
	for _, stmt := range enclosingLoops(body, g) {
		switch s := stmt.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := p.Info.Defs[id]; obj != nil {
						loopVars[obj] = id.Name
					}
				}
			}
		case *ast.ForStmt:
			if assign, ok := s.Init.(*ast.AssignStmt); ok && assign.Tok == token.DEFINE {
				for _, e := range assign.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := p.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return nil
	}
	var captured []string
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if name, isLoop := loopVars[p.Info.Uses[id]]; isLoop && !seen[name] {
			seen[name] = true
			captured = append(captured, name)
		}
		return true
	})
	return captured
}

// enclosingLoops returns the for/range statements in body that contain g.
func enclosingLoops(body *ast.BlockStmt, g *ast.GoStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= g.Pos() && g.End() <= n.End() {
				loops = append(loops, n.(ast.Stmt))
			}
		case nil:
			return false
		}
		return true
	})
	return loops
}
