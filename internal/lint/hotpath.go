package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpath-alloc enforces the zero-allocation contract on the simulator's
// steady-state hot paths. A function annotated with a "lint:hotpath"
// directive is a root; it and every function it transitively calls
// (through static call edges) must not allocate. Flagged sites:
//
//   - make / new / append builtin calls
//   - slice and map composite literals, and &CompositeLit of any type
//   - non-constant string concatenation and string<->[]byte conversions
//   - go statements (goroutine spawn allocates a stack)
//   - function literals that capture enclosing locals (heap-allocated
//     closure environment)
//   - interface boxing at call sites (a concrete value passed where the
//     callee takes an interface)
//
// Two escape hatches keep the rule honest rather than noisy: allocation
// sites inside doomed blocks (every path ends in panic) are exempt, since
// building a panic message is failure-path code by construction; and a
// "lint:allow hotpath-alloc" directive on a function declaration exempts
// that whole function AND stops the descent into its callees, for
// deliberately cold subgraphs like nil-gated metrics.
func analyzeHotpathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpath-alloc",
		Doc: "functions marked lint:hotpath, and everything they transitively call, must not " +
			"allocate: no make/new/append, composite literals, string building, goroutine spawns, " +
			"capturing closures, or interface boxing (panic-only blocks are exempt; a lint:allow " +
			"hotpath-alloc directive on a declaration exempts it and its callees)",
		Run: runHotpathAlloc,
	}
}

func runHotpathAlloc(m *Module, report func(pos token.Pos, format string, args ...any)) {
	g := m.CallGraph()

	// Roots: declarations whose first line carries a lint:hotpath mark.
	var roots []string
	for _, full := range g.names {
		d := g.Decl(full)
		if d == nil {
			continue
		}
		if d.File.HotpathAt(m.Fset.Position(d.Decl.Pos()).Line) {
			roots = append(roots, full)
		}
	}
	sort.Strings(roots)

	// BFS from the roots, recording for each hot function the first root
	// that reaches it (deterministic: sorted roots, sorted callee lists).
	// A declaration-level lint:allow hotpath-alloc prunes the walk.
	rootOf := map[string]string{}
	var order []string
	for _, r := range roots {
		if _, seen := rootOf[r]; seen {
			continue
		}
		queue := []string{r}
		rootOf[r] = r
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			order = append(order, fn)
			d := g.Decl(fn)
			if d == nil {
				continue // stdlib or not declared here; nothing to scan or descend into
			}
			if declExempt(m, d) {
				continue
			}
			for _, callee := range g.Callees(fn) {
				if _, seen := rootOf[callee]; !seen {
					rootOf[callee] = rootOf[fn]
					queue = append(queue, callee)
				}
			}
		}
	}

	for _, fn := range order {
		d := g.Decl(fn)
		if d == nil || d.Decl.Body == nil || declExempt(m, d) {
			continue
		}
		checkAllocs(m, d, rootOf[fn], report)
	}
}

// declExempt reports whether the function declaration carries a
// lint:allow hotpath-alloc directive on its own line (or the line above,
// via the directive's two-line span).
func declExempt(m *Module, d *FuncDecl) bool {
	return d.File.Allows("hotpath-alloc", m.Fset.Position(d.Decl.Pos()).Line)
}

// checkAllocs scans one hot function's body for allocation sites,
// skipping statements in doomed (panic-only) blocks.
func checkAllocs(m *Module, d *FuncDecl, root string, report func(pos token.Pos, format string, args ...any)) {
	p := d.Pkg
	doomed := posIntervals(buildCFG(p, d.Decl.Body).doomedIntervals())
	via := ""
	if root != d.Full {
		via = " (on the hot path from " + shortName(root) + ")"
	}
	flag := func(pos token.Pos, what string) {
		if doomed.contains(pos) {
			return // failure path: every continuation panics
		}
		report(pos, "%s in hot-path function %s%s; hoist the allocation out of the steady state or restructure to reuse a buffer", what, shortName(d.Full), via)
	}

	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			flag(n.Pos(), "goroutine spawn")
		case *ast.CallExpr:
			checkCallAlloc(p, n, flag)
		case *ast.CompositeLit:
			switch p.typeOf(n).Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal")
			case *types.Map:
				flag(n.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					flag(n.Pos(), "heap allocation (&composite literal)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(p, n) {
				flag(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(p.typeOf(n.Lhs[0])) {
				flag(n.Pos(), "string concatenation")
			}
		case *ast.FuncLit:
			if capturesLocals(p, d.Decl, n) {
				flag(n.Pos(), "capturing closure")
			}
			return false // the literal runs elsewhere; only its capture costs here
		}
		return true
	})
}

// checkCallAlloc flags allocating builtins, allocating conversions, and
// interface boxing of concrete arguments.
func checkCallAlloc(p *Package, call *ast.CallExpr, flag func(pos token.Pos, what string)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				flag(call.Pos(), "call to "+b.Name())
			}
			return
		}
	}
	// Conversions between string and []byte copy the data.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, p.typeOf(call.Args[0])
		if (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src)) {
			if av, ok := p.Info.Types[call.Args[0]]; !ok || av.Value == nil {
				flag(call.Pos(), "string/[]byte conversion")
			}
		}
		return
	}
	// Interface boxing: a concrete argument passed to an interface
	// parameter escapes to the heap (including variadic ...any).
	sig := callSignature(p, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		param := paramType(sig, i, call.Ellipsis.IsValid())
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := p.typeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		flag(arg.Pos(), "interface boxing of "+at.String()+" argument")
	}
}

// callSignature returns the static signature of call, or nil for builtins
// and conversions.
func callSignature(p *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type the i-th argument is assigned to, expanding
// the variadic tail to its element type (nil when spread with ...).
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if hasEllipsis {
			return nil // spread slice: no per-element boxing at this site
		}
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// capturesLocals reports whether lit references any variable declared in
// the enclosing function outside the literal itself.
func capturesLocals(p *Package, outer *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= lit.Pos() && pos < lit.End() {
			return true // the literal's own param or local
		}
		if pos >= outer.Pos() && pos < outer.End() {
			captured = true
		}
		return true
	})
	return captured
}

func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// isNonConstString reports whether e is a string-typed addition whose
// value is not a compile-time constant.
func isNonConstString(p *Package, e *ast.BinaryExpr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}

// shortName compresses a FullName like
// "(meshslice/internal/mesh.Comm).SendOwnedTo" to "mesh.Comm.SendOwnedTo"
// for readable diagnostics.
func shortName(full string) string {
	s := strings.ReplaceAll(full, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	s = strings.TrimPrefix(s, "*")
	s = strings.ReplaceAll(s, ".*", ".")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
