package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// map-order catches the classic Go determinism bug: ranging over a map
// and letting the iteration order reach output. A `for ... range m` over
// a map is flagged when its body reaches an order-sensitive sink:
//
//   - a direct emission (fmt printing, encoder/writer calls, metric
//     mutation) inside the loop body,
//   - a call to a module function that transitively emits (summaries are
//     propagated over the shared call graph), or
//   - an append of loop-derived data to a slice declared outside the
//     loop, UNLESS the same slice is sorted after the loop — the
//     collect-then-sort idiom is the sanctioned fix and stays silent.
//
// Test files are skipped: tests are entitled to range over maps when
// asserting set membership.
func analyzeMapOrder() *Analyzer {
	return &Analyzer{
		Name: "map-order",
		Doc: "ranging over a map must not let the nondeterministic iteration order reach output: " +
			"no emission (printing, encoding, metrics — directly or via calls) from the loop body, " +
			"and keys collected into a slice must be sorted after the loop",
		Run: runMapOrder,
	}
}

func runMapOrder(m *Module, report func(pos token.Pos, format string, args ...any)) {
	emits := emitSummaries(m)
	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd.Body, emits, report)
		}
	})
}

// emitSummaries computes, per module function (FullName), whether calling
// it can emit order-sensitive output, by seeding direct sinks and closing
// transitively over the call graph's reverse edges.
func emitSummaries(m *Module) map[string]bool {
	g := m.CallGraph()
	emits := map[string]bool{}
	var direct []string
	for _, full := range g.names {
		d := g.Decl(full)
		if d == nil || d.Decl.Body == nil {
			continue
		}
		found := false
		ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isEmitCall(d.Pkg, call) {
				found = true
			}
			return !found
		})
		if found {
			emits[full] = true
			direct = append(direct, full)
		}
	}
	callers := g.Callers()
	queue := direct
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callers[fn] {
			if !emits[caller] {
				emits[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return emits
}

// emitRecvTypes names receiver types whose mutating methods are
// order-sensitive sinks: the obs metric family (emission order shows up
// in snapshots and traces). tensor.Matrix.Set/Add are NOT sinks — matrix
// element writes commute.
var emitRecvTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Series": true,
	"Registry": true, "Tracer": true,
}

// isEmitCall recognises direct order-sensitive sinks.
func isEmitCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// Package-level printers: fmt.Print*/Fprint* and friends.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				return true
			}
			return false
		}
	}
	// Method sinks, classified by receiver type name.
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	rn := named.Obj().Name()
	switch name {
	case "Encode":
		return rn == "Encoder"
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	case "Inc", "Add", "Set", "Observe", "Append", "Emit", "Record":
		return emitRecvTypes[rn]
	}
	return false
}

// checkMapRanges walks one function body looking for map ranges whose
// bodies reach a sink.
func checkMapRanges(p *Package, body *ast.BlockStmt, emits map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := p.typeOf(rs.X); t == nil || !isMapType(t) {
			return true
		}
		checkOneMapRange(p, body, rs, emits, report)
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkOneMapRange(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, emits map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	// Appends to outer slices are conditionally safe; collect the targets
	// first, then decide once we know whether a sort follows the loop.
	type appendTo struct {
		target string
		pos    token.Pos
	}
	var appends []appendTo
	reported := false

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct sink inside the loop: always a bug (a later sort cannot
		// unscramble output that already happened in map order).
		if isEmitCall(p, call) {
			report(call.Pos(), "emission inside a map-range loop at %s: output follows the nondeterministic iteration order; collect and sort the keys first", describeRange(rs))
			reported = true
			return false
		}
		// Call to a module function that transitively emits.
		if callee, ok := calleeFunc(p, call); ok && emits[callee.FullName()] {
			report(call.Pos(), "call to %s inside a map-range loop at %s reaches an order-sensitive sink; collect and sort the keys first", shortName(callee.FullName()), describeRange(rs))
			reported = true
			return false
		}
		// out = append(out, ...) where out lives outside the loop.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				if target, outer := outerAppendTarget(p, rs, call.Args[0]); outer {
					appends = append(appends, appendTo{target, call.Pos()})
				}
			}
		}
		return true
	})
	if reported {
		return
	}
	for _, a := range appends {
		if !sortedAfter(p, fnBody, rs, a.target) {
			report(a.pos, "map-range loop at %s appends to %q in nondeterministic key order and %q is never sorted afterwards; sort it (or range over sorted keys) before the order can reach output", describeRange(rs), a.target, a.target)
		}
	}
}

// outerAppendTarget reports whether the append destination is a variable
// (plain ident or selector chain) declared outside the range statement,
// and returns its canonical rendering for sort matching.
func outerAppendTarget(p *Package, rs *ast.RangeStmt, dst ast.Expr) (string, bool) {
	s, ok := renderChain(dst)
	if !ok {
		return "", false
	}
	// Resolve the chain's base variable; it must be declared outside the
	// loop for the order to be observable after it.
	base := dst
	for {
		if sel, ok := base.(*ast.SelectorExpr); ok {
			base = sel.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", false
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		return "", false
	}
	if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
		return "", false // loop-local accumulator: order dies with the loop
	}
	return s, true
}

// renderChain renders an ident or selector chain ("out", "e.stallEdges")
// canonically; anything else (index expressions, calls) is not matchable.
func renderChain(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := renderChain(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// sortedAfter reports whether, lexically after the range loop inside the
// same function body, target is passed to a sort (sort.* or slices.*) —
// the collect-then-sort idiom.
func sortedAfter(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if arg, ok := renderChain(call.Args[0]); ok && arg == target {
			found = true
		}
		return !found
	})
	return found
}

// describeRange renders the loop position compactly ("range over m").
func describeRange(rs *ast.RangeStmt) string {
	if s, ok := renderChain(rs.X); ok {
		return "\"range " + s + "\""
	}
	return "this range statement"
}
