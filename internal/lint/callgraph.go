package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the module's static call graph, shared by every analyzer
// that reasons across function boundaries (panic-audit's API-reachability
// walk, hotpath-alloc's transitive no-allocation closure, map-order's
// emits-output summaries). It is built once per Module and cached.
//
// Functions are keyed by their qualified name (types.Func.FullName) rather
// than object identity, because packages with in-package tests are
// type-checked twice — once test-free for importers, once with tests for
// analysis — and the two checks mint distinct objects for the same
// function.
//
// The graph is a static under-approximation: direct calls and concrete
// method calls are edges; calls through interfaces or function values are
// not. Calls inside function literals are attributed to the declared
// function that lexically contains them, which is exactly right for this
// codebase's dominant pattern (SPMD closures handed to mesh.Run).
type CallGraph struct {
	// callees maps a caller's FullName to its callees' FullNames, sorted.
	callees map[string][]string
	// decls maps a FullName to its (non-test) declaration.
	decls map[string]*FuncDecl
	// names lists every function that appears as a caller or declaration,
	// sorted, for deterministic iteration.
	names []string
}

// FuncDecl is one declared function in non-test module code, with enough
// context for analyzers to inspect its body with type information.
type FuncDecl struct {
	Full string // qualified name (types.Func.FullName)
	Pkg  *Package
	File *File
	Decl *ast.FuncDecl
}

// CallGraph returns the module's call graph, building it on first use.
func (m *Module) CallGraph() *CallGraph {
	if m.callGraph == nil {
		m.callGraph = buildCallGraph(m)
	}
	return m.callGraph
}

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		callees: map[string][]string{},
		decls:   map[string]*FuncDecl{},
	}
	raw := map[string]map[string]bool{}
	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			caller := fn.FullName()
			if g.decls[caller] == nil {
				g.decls[caller] = &FuncDecl{Full: caller, Pkg: p, File: f, Decl: fd}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee, ok := calleeFunc(p, call); ok {
					if raw[caller] == nil {
						raw[caller] = map[string]bool{}
					}
					raw[caller][callee.FullName()] = true
				}
				return true
			})
		}
	})
	seen := map[string]bool{}
	for caller, set := range raw {
		callees := make([]string, 0, len(set))
		for c := range set {
			callees = append(callees, c)
			seen[c] = true
		}
		sort.Strings(callees)
		g.callees[caller] = callees
		seen[caller] = true
	}
	for name := range g.decls {
		seen[name] = true
	}
	g.names = make([]string, 0, len(seen))
	for name := range seen {
		g.names = append(g.names, name)
	}
	sort.Strings(g.names)
	return g
}

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes, or ok=false for builtins, conversions, and indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// Callees returns the sorted callee FullNames of the given function.
func (g *CallGraph) Callees(full string) []string { return g.callees[full] }

// Decl returns the non-test declaration of the given function, or nil for
// functions the module does not declare (stdlib, interface methods).
func (g *CallGraph) Decl(full string) *FuncDecl { return g.decls[full] }

// ReachableFrom walks the graph forward from roots and returns the set of
// functions reachable through static call edges (roots included).
func (g *CallGraph) ReachableFrom(roots []string) map[string]bool {
	reachable := map[string]bool{}
	var visit func(fn string)
	visit = func(fn string) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		for _, callee := range g.callees[fn] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return reachable
}

// Callers returns, for every function, the sorted set of its direct
// callers — the reverse edge map, computed on demand.
func (g *CallGraph) Callers() map[string][]string {
	rev := map[string]map[string]bool{}
	for _, caller := range g.names {
		for _, callee := range g.callees[caller] {
			if rev[callee] == nil {
				rev[callee] = map[string]bool{}
			}
			rev[callee][caller] = true
		}
	}
	out := make(map[string][]string, len(rev))
	for callee, set := range rev {
		callers := make([]string, 0, len(set))
		for c := range set {
			callers = append(callers, c)
		}
		sort.Strings(callers)
		out[callee] = callers
	}
	return out
}

// apiRoots returns the module root package's exported surface: its
// exported functions, and the exported methods of every named type an
// exported type name of the root package denotes (the facade re-exports
// internal types by alias, which makes those methods public API).
func (m *Module) apiRoots() []string {
	var roots []string
	for _, pkg := range m.Packages {
		if pkg.Path != m.Path || pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			switch obj := obj.(type) {
			case *types.Func:
				roots = append(roots, obj.FullName())
			case *types.TypeName:
				if named, ok := obj.Type().(*types.Named); ok {
					for i := 0; i < named.NumMethods(); i++ {
						if method := named.Method(i); method.Exported() {
							roots = append(roots, method.FullName())
						}
					}
				}
			}
		}
	}
	sort.Strings(roots)
	return roots
}
