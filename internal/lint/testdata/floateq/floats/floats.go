// Package floats is a fixture for the float-eq rule.
package floats

func compare(a, b float64, n, m int) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a != 0 { // want "floating-point != comparison"
		return false
	}
	return n == m // ints compare exactly; no finding
}

// tieBreak is the annotated exact comparison the rule permits: sort
// comparators must be exact or ordering becomes tolerance-dependent.
func tieBreak(a, b, x, y float64) bool {
	if a != b { // lint:float-exact sort tie-break
		return a < b
	}
	return x < y
}
