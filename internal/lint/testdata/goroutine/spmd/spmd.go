// Package spmd is a fixture for the goroutine-discipline rule.
package spmd

import "sync"

// leak launches a goroutine nothing ever joins.
func leak() {
	go func() {}() // want "goroutine launched without a sync.WaitGroup wait or channel join"
}

// capture joins correctly but lets the closure reach into the loop
// variable instead of receiving it as an argument.
func capture(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func() { // want "goroutine closure captures loop variable \"rank\""
			defer wg.Done()
			_ = rank
		}()
	}
	wg.Wait()
}

// captureRange is the range-statement flavour of the same mistake.
func captureRange(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, item := range items {
		go func() { // want "goroutine closure captures loop variable \"item\""
			defer wg.Done()
			_ = item
		}()
	}
	wg.Wait()
}

// disciplined is the sanctioned shape: the loop variable arrives as an
// argument and a WaitGroup joins every goroutine.
func disciplined(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			_ = rank
		}(rank)
	}
	wg.Wait()
}

// channelJoin demonstrates the other sanctioned join: a channel receive.
func channelJoin() int {
	done := make(chan int)
	go func() { done <- 1 }()
	return <-done
}
