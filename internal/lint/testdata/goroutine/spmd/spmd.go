// Package spmd is a fixture for the goroutine-discipline rule.
package spmd

import "sync"

// leak launches a goroutine nothing ever joins.
func leak() {
	go func() {}() // want "goroutine launched without a sync.WaitGroup wait or channel join"
}

// capture joins correctly but lets the closure reach into the loop
// variable instead of receiving it as an argument.
func capture(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func() { // want "goroutine closure captures loop variable \"rank\""
			defer wg.Done()
			_ = rank
		}()
	}
	wg.Wait()
}

// captureRange is the range-statement flavour of the same mistake.
func captureRange(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items))
	for _, item := range items {
		go func() { // want "goroutine closure captures loop variable \"item\""
			defer wg.Done()
			_ = item
		}()
	}
	wg.Wait()
}

// disciplined is the sanctioned shape: the loop variable arrives as an
// argument and a WaitGroup joins every goroutine.
func disciplined(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			_ = rank
		}(rank)
	}
	wg.Wait()
}

// channelJoin demonstrates the other sanctioned join: a channel receive.
func channelJoin() int {
	done := make(chan int)
	go func() { done <- 1 }()
	return <-done
}

// workerPoolStrips is the bounded worker-pool shape the tensor kernels
// use: each worker takes its row strip as arguments and the launcher waits
// before returning. Must produce no findings.
func workerPoolStrips(rows, workers int, kernel func(lo, hi int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rows / workers
		hi := (w + 1) * rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kernel(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// workerPoolStrided is the autotuner's deterministic fan-out: worker w
// owns indices w, w+workers, ... so the work division is independent of
// scheduling. Must produce no findings.
func workerPoolStrided(n, workers int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
