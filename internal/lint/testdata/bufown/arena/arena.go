// Package arena is a fixture for the buf-ownership rule. It mimics the
// mesh runtime's arena API with a local Comm type — the analyzer
// recognises the API by method name and receiver type name, so the
// fixture needs no module imports.
package arena

// Matrix stands in for tensor.Matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func (m *Matrix) CopyFrom(o *Matrix) {}
func (m *Matrix) Add(o *Matrix)      {}

// Comm mimics the mesh ring communicator.
type Comm struct{ Size, Pos int }

func (cm *Comm) AcquireBuf(rows, cols int) *Matrix { return &Matrix{Rows: rows, Cols: cols} }
func (cm *Comm) ReleaseBuf(m *Matrix)              {}
func (cm *Comm) SendOwnedTo(pos int, m *Matrix)    {}
func (cm *Comm) RecvFrom(pos int) *Matrix          { return &Matrix{} }

// UseAfterSend reads the buffer it already handed off.
func UseAfterSend(cm *Comm, local *Matrix) {
	cur := cm.AcquireBuf(local.Rows, local.Cols)
	cur.CopyFrom(local)
	cm.SendOwnedTo(cm.Pos+1, cur)
	cur.Add(local) // want "use of \"cur\" after SendOwned"
}

// DoubleRelease returns the same buffer to the pool twice.
func DoubleRelease(cm *Comm, local *Matrix) {
	cur := cm.AcquireBuf(2, 2)
	cur.CopyFrom(local)
	cm.ReleaseBuf(cur)
	cm.ReleaseBuf(cur) // want "double ReleaseBuf of \"cur\""
}

// SendAfterRelease hands off a buffer the pool already owns again.
func SendAfterRelease(cm *Comm) {
	cur := cm.AcquireBuf(2, 2)
	cm.ReleaseBuf(cur)
	cm.SendOwnedTo(cm.Pos+1, cur) // want "SendOwned of \"cur\" after ReleaseBuf"
}

// LeakOnSomePath forgets the buffer on the early-return branch.
func LeakOnSomePath(cm *Comm, n int) {
	cur := cm.AcquireBuf(n, n) // want "may leak"
	if n > 4 {
		return
	}
	cm.ReleaseBuf(cur)
}

// SomePathSend sends on one branch only; the merged state is both a
// maybe-dead use and a maybe-leak.
func SomePathSend(cm *Comm, flag bool, local *Matrix) {
	cur := cm.AcquireBuf(2, 2) // want "may leak"
	cur.CopyFrom(local)
	if flag {
		cm.SendOwnedTo(cm.Pos+1, cur)
	}
	cur.Add(local) // want "use of \"cur\" after SendOwned"
}

// RingLoop is the sanctioned hot-path pattern: send, receive into the
// same variable (which revives it), and release whatever is held after
// the last step. No findings.
func RingLoop(cm *Comm, local, dst *Matrix) {
	cur := cm.AcquireBuf(local.Rows, local.Cols)
	cur.CopyFrom(local)
	for t := 0; t < cm.Size-1; t++ {
		cm.SendOwnedTo(cm.Pos+1, cur)
		cur = cm.RecvFrom(cm.Pos - 1)
		dst.Add(cur)
	}
	cm.ReleaseBuf(cur)
}

// Returned transfers ownership to the caller: no leak.
func Returned(cm *Comm, n int) *Matrix {
	cur := cm.AcquireBuf(n, n)
	return cur
}

// Suppressed documents the inline escape hatch.
func Suppressed(cm *Comm) {
	cur := cm.AcquireBuf(2, 2)
	cm.SendOwnedTo(cm.Pos+1, cur)
	cm.ReleaseBuf(cur) // lint:allow buf-ownership fixture exercises the suppression path
}
