package arena

// Handle mimics the mesh runtime's async collective handle: the analyzer
// recognises Start*-named constructors by their *Handle result type and
// Wait() as the discharge, so the fixture needs no module imports.
type Handle struct{ done bool }

func (h *Handle) Wait() {}

// StartAllGatherRowsInto mimics collective.StartAllGatherRowsInto.
func (cm *Comm) StartAllGatherRowsInto(local, dst *Matrix) *Handle { return &Handle{} }

// StartReduceScatterColsInto mimics collective.StartReduceScatterColsInto.
func (cm *Comm) StartReduceScatterColsInto(m, dst *Matrix) *Handle { return &Handle{} }

// PipelinedIdiom is the blessed double-buffered shape (the peeled-epilogue
// form the gemm pipelines use): every Start has an unconditional matching
// Wait, and the rotation h = hN MOVES the obligation. No findings.
func PipelinedIdiom(cm *Comm, local *Matrix, dst [2]*Matrix, iters int) {
	h := cm.StartAllGatherRowsInto(local, dst[0])
	for i := 0; i < iters-1; i++ {
		hN := cm.StartAllGatherRowsInto(local, dst[(i+1)%2])
		h.Wait()
		h = hN
	}
	h.Wait()
}

// ConditionalPrefetch guards the issue and the wait by conditions the
// path-insensitive analyzer cannot correlate, so it reports a maybe-leak
// (the rotation moves the branch-issued handle's obligation into h, which
// is never discharged after the final rotation on the analyzer's exit
// paths) — the reason the real pipelines use the peeled-epilogue shape.
func ConditionalPrefetch(cm *Comm, local *Matrix, dst [2]*Matrix, iters int) {
	h := cm.StartAllGatherRowsInto(local, dst[0]) // want "async handle may leak"
	for i := 0; i < iters; i++ {
		var hN *Handle
		if i+1 < iters {
			hN = cm.StartAllGatherRowsInto(local, dst[(i+1)%2])
		}
		h.Wait()
		h = hN
	}
}

// LeakedHandleOnSomePath forgets to Wait on the early-return branch: the
// collective's completion (and any panic it carries) goes unobserved.
func LeakedHandleOnSomePath(cm *Comm, local, dst *Matrix, n int) {
	h := cm.StartAllGatherRowsInto(local, dst) // want "async handle may leak"
	if n > 4 {
		return
	}
	h.Wait()
}

// DoubleWait discharges the same handle twice.
func DoubleWait(cm *Comm, wide, dst *Matrix) {
	h := cm.StartReduceScatterColsInto(wide, dst)
	h.Wait()
	h.Wait() // want "\"h\" waited twice"
}

// TwoInFlight is the overlap discipline: two ops outstanding on one ring,
// waited in issue order. No findings.
func TwoInFlight(cm *Comm, local, wide, rows, dst *Matrix) {
	h1 := cm.StartAllGatherRowsInto(local, rows)
	h2 := cm.StartReduceScatterColsInto(wide, dst)
	h1.Wait()
	h2.Wait()
}

// ReturnedHandleTransfers hands the obligation to the caller. No findings.
func ReturnedHandleTransfers(cm *Comm, local, dst *Matrix) *Handle {
	return cm.StartAllGatherRowsInto(local, dst)
}
