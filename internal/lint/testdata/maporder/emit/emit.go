// Package emit is a fixture for the map-order rule: ranging over a map
// must not let the nondeterministic iteration order reach output, whether
// the sink is hit directly, through a call, or by collecting keys into a
// slice that is never sorted.
package emit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// PrintTotals emits in map iteration order: the classic bug.
func PrintTotals(totals map[string]int) {
	for k, v := range totals {
		fmt.Println(k, v) // want "emission inside a map-range loop"
	}
}

// Keys collects then sorts — the sanctioned idiom, no finding.
func Keys(totals map[string]int) []string {
	var keys []string
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys collects without ever sorting: the order escapes.
func UnsortedKeys(totals map[string]int) []string {
	var keys []string
	for k := range totals {
		keys = append(keys, k) // want "appends to \"keys\" in nondeterministic key order"
	}
	return keys
}

// report transitively emits; the summary propagates over the call graph.
func report(s string) {
	fmt.Println(s)
}

// Transitive reaches output through a helper call.
func Transitive(totals map[string]int) {
	for k := range totals {
		report(k) // want "call to emit.report inside a map-range loop"
	}
}

// EncodeTotals feeds a JSON encoder straight from a map range: the
// emitted document order changes run to run.
func EncodeTotals(w io.Writer, totals map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range totals {
		enc.Encode(map[string]int{k: v}) // want "emission inside a map-range loop"
	}
}

// Counter mirrors the obs metric family; its Inc is an order-sensitive
// sink because emission order shows up in snapshots.
type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

// CountKeys mutates metrics in map iteration order.
func CountKeys(perKey map[string]*Counter) {
	for _, c := range perKey {
		c.Inc() // want "emission inside a map-range loop"
	}
}

// collector mirrors the exchanger's e.stallEdges pattern: the append
// target is a selector chain, sorted after the loop. No finding.
type collector struct{ keys []string }

func (c *collector) gather(m map[string]bool) {
	for k := range m {
		c.keys = append(c.keys, k)
	}
	sort.Strings(c.keys)
}

// LoopLocal's accumulator dies with the loop body: order never escapes.
func LoopLocal(totals map[string]int) int {
	n := 0
	for _, v := range totals {
		parts := []int{}
		parts = append(parts, v)
		n += len(parts)
	}
	return n
}

// SliceRange is not a map range: appends stay silent.
func SliceRange(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v*2)
	}
	return out
}

// Suppressed documents a deliberate unordered dump.
func Suppressed(totals map[string]int) {
	for k := range totals {
		fmt.Println(k) // lint:allow map-order debugging dump, order genuinely irrelevant
	}
}

// Exercise keeps the unexported helpers reachable for the fixture build.
func Exercise(totals map[string]int) {
	Transitive(totals)
	c := &collector{}
	c.gather(map[string]bool{"a": true})
}
