// Package ckptmanifest is a fixture for the map-order rule pinning the
// checkpoint-manifest emission idiom: a snapshot manifest's tensor
// inventory is collected into a map keyed by name, and the map's iteration
// order must never reach the encoded manifest — names are gathered, sorted,
// then emitted (the internal/ckpt BuildSnapshot idiom). The fixture holds
// both the sanctioned shape and the violations it guards against.
package ckptmanifest

import (
	"encoding/json"
	"io"
	"sort"
)

// spec mirrors ckpt.TensorSpec: one named tensor in the inventory.
type spec struct {
	Name       string
	Rows, Cols int
}

// manifest mirrors the byte-comparable artifact: its Tensors order is part
// of the canonical encoding.
type manifest struct {
	Tensors []spec
}

// BuildManifest collects the spec map into sorted name order before any of
// it reaches the manifest — the sanctioned collect-then-sort idiom, no
// finding.
func BuildManifest(specs map[string]spec) *manifest {
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &manifest{}
	for _, name := range names {
		m.Tensors = append(m.Tensors, specs[name])
	}
	return m
}

// BuildManifestUnsorted appends specs in map iteration order: the
// nondeterministic order becomes part of the encoded artifact.
func BuildManifestUnsorted(specs map[string]spec) *manifest {
	m := &manifest{}
	for _, s := range specs {
		m.Tensors = append(m.Tensors, s) // want "appends to \"m.Tensors\" in nondeterministic key order"
	}
	return m
}

// EncodeInventory streams the inventory straight from a map range into the
// encoder: manifest bytes would differ run to run.
func EncodeInventory(w io.Writer, specs map[string]spec) {
	enc := json.NewEncoder(w)
	for _, s := range specs {
		enc.Encode(s) // want "emission inside a map-range loop"
	}
}
