// Package panicroot is a fixture for the panic-audit rule: the loader
// mounts it as the module root, so its exported surface is the API whose
// reachable panics must be annotated.
package panicroot

import "fmt"

// Multiply is exported API; the panic in its helper is reachable and
// unannotated, so it must be reported.
func Multiply(n int) int { return helper(n) }

func helper(n int) int {
	if n < 0 {
		panic("negative") // want "panic in fixture/panicroot.helper is reachable"
	}
	return n * n
}

// Grid is an exported type: its exported methods are API roots too.
type Grid struct{ n int }

func (g Grid) At(i int) int {
	if i >= g.n {
		panic(fmt.Sprintf("index %d out of range", i)) // want "panic in \\(fixture/panicroot.Grid\\).At is reachable"
	}
	return i
}

// Checked is reachable but annotated as a deliberate invariant check.
func Checked(n int) int {
	if n < 0 {
		panic("impossible") // lint:invariant guarded by construction
	}
	return n
}

// orphan is not reachable from any exported function, so its panic is
// inventory only, never a finding.
func orphan() {
	panic("unreachable from the API")
}
