// Package kernels is a fixture for the hotpath-alloc rule: functions
// annotated lint:hotpath — and everything they transitively call — must
// not allocate, with panic-only blocks exempt and a declaration-level
// lint:allow hotpath-alloc stopping the descent.
package kernels

import "fmt"

// Matrix stands in for tensor.Matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// AxpyRows is a hot-path root; its direct body is clean, but the helpers
// it calls are checked transitively.
// lint:hotpath inner loops must not allocate
func AxpyRows(dst, src *Matrix, alpha float64) {
	if dst.Rows < 0 {
		// Doomed block: every path from here panics, so building the panic
		// message is exempt from the allocation rule.
		panic(fmt.Sprintf("bad rows %d", dst.Rows)) // lint:invariant shape precondition
	}
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
	scratch(dst)
	box(dst.Rows)
	metrics(dst)
}

// Concat is a hot-path root with direct violations.
// lint:hotpath
func Concat(prefix, name string, rows []float64) string {
	s := prefix + name                        // want "string concatenation in hot-path function kernels.Concat"
	tmp := &Matrix{Data: rows}                // want "heap allocation"
	closure := func() int { return tmp.Rows } // want "capturing closure"
	_ = closure
	return s
}

// scratch is one hop from a root: its allocations count against the root.
func scratch(m *Matrix) {
	tmp := make([]float64, m.Cols) // want "call to make in hot-path function kernels.scratch"
	tmp = append(tmp, 1)           // want "call to append"
	_ = tmp
	deeper(m)
}

// deeper is two hops from a root: still on the hot path.
func deeper(m *Matrix) {
	_ = []byte(sink) // want "string/\\[\\]byte conversion"
	_ = m
}

var sink = "x"

// box passes a concrete value to an interface parameter.
func box(v int) {
	consume(v) // want "interface boxing of int argument"
}

func consume(x any) { _ = x }

// metrics is deliberately cold (think nil-gated observability): the
// declaration-level allow exempts it and stops the descent into callees.
// lint:allow hotpath-alloc nil-gated off the hot path
func metrics(m *Matrix) {
	labels := make([]string, 0, 2)
	labels = append(labels, "rows")
	_ = labels
}

// Cold is not annotated and not reachable from a root: allocations here
// are fine.
func Cold(n int) []int {
	out := make([]int, n)
	return out
}

func (m *Matrix) CopyFrom(o *Matrix) {}

// Comm mimics the mesh communicator so the fixture can shape a ring
// collective exactly like collective.AllGatherInto.
type Comm struct{ Size, Pos int }

var recvScratch = &Matrix{}

func (cm *Comm) SendOwnedTo(pos int, m *Matrix) {}
func (cm *Comm) RecvFrom(pos int) *Matrix       { return recvScratch }
func (cm *Comm) ReleaseBuf(m *Matrix)           {}

// lint:allow hotpath-alloc pool miss allocates by design, mirroring the real arena
func (cm *Comm) AcquireBuf(rows, cols int) *Matrix { return &Matrix{Rows: rows, Cols: cols} }

// RingGatherInto is an annotated *Into-style ring collective with an
// allocation planted inside the per-step loop — the exact regression the
// rule exists to catch.
// lint:hotpath ring steady state must not allocate
func RingGatherInto(cm *Comm, local *Matrix, out []*Matrix) {
	cur := cm.AcquireBuf(local.Rows, local.Cols)
	cur.CopyFrom(local)
	for t := 0; t < cm.Size-1; t++ {
		cm.SendOwnedTo(cm.Pos+1, cur)
		cur = cm.RecvFrom(cm.Pos - 1)
		tmp := make([]float64, local.Cols) // want "call to make in hot-path function kernels.RingGatherInto"
		copy(tmp, cur.Data)
		out[t].CopyFrom(cur)
	}
	cm.ReleaseBuf(cur)
}
