// Package randuse is a fixture for the seeded-rand rule.
package randuse

import "math/rand"

func global() float64 {
	x := rand.Float64()                // want "rand.Float64 draws from the global math/rand source"
	n := rand.Intn(10)                 // want "rand.Intn draws from the global math/rand source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the global math/rand source"
	return x
}

// seeded threads an explicitly seeded generator: constructors and *rand.Rand
// methods are the sanctioned, reproducible form.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
