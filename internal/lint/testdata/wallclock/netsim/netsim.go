// Package netsim is a fixture: its path ends in a simulator package name,
// so wall-clock reads are forbidden.
package netsim

import "time"

func step() float64 {
	start := time.Now()                // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)       // want "time.Sleep reads the wall clock"
	return time.Since(start).Seconds() // want "time.Since reads the wall clock"
}

// durations reports a pure duration computation: constructing and
// converting time.Duration values never observes real time, so it is legal
// even inside simulator packages.
func durations() float64 {
	d := 3 * time.Millisecond
	return d.Seconds()
}
