// Package clockfree is a fixture: it is not one of the simulator packages,
// so wall-clock reads are allowed (the CLI's progress output needs them).
package clockfree

import "time"

func stamp() time.Time { return time.Now() }
