package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestAnalyzersGolden runs the full rule suite over each testdata fixture
// and checks the findings against the fixtures' "// want \"regexp\""
// expectation comments, in both directions: every finding must be wanted,
// and every want must fire.
func TestAnalyzersGolden(t *testing.T) {
	fixtures := []struct{ dir, path string }{
		{"wallclock/netsim", "fixture/netsim"},
		{"wallclock/clockfree", "fixture/clockfree"},
		{"seededrand/randuse", "fixture/randuse"},
		{"floateq/floats", "fixture/floats"},
		{"goroutine/spmd", "fixture/spmd"},
		{"panicaudit/panicroot", "fixture/panicroot"},
		{"bufown/arena", "fixture/arena"},
		{"hotpath/kernels", "fixture/kernels"},
		{"maporder/emit", "fixture/emit"},
		{"maporder/ckptmanifest", "fixture/ckptmanifest"},
	}
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", fx.dir)
			m, err := LoadPackage(dir, fx.path)
			if err != nil {
				t.Fatalf("LoadPackage(%s): %v", dir, err)
			}
			diags := Run(m, Analyzers(), nil)

			wants, err := collectWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			matched := map[*want]bool{}
		diag:
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				for _, w := range wants[key] {
					if !matched[w] && w.re.MatchString(d.Msg) {
						matched[w] = true
						continue diag
					}
				}
				t.Errorf("unexpected finding %s:%d: [%s] %s", key, d.Pos.Line, d.Rule, d.Msg)
			}
			for key, ws := range wants {
				for _, w := range ws {
					if !matched[w] {
						t.Errorf("%s: expected a finding matching %q, got none", key, w.re)
					}
				}
			}
		})
	}
}

// TestSuiteComposition pins the rule suite: CI's JSON-report contract and
// the DESIGN.md invariants table both enumerate these names in this order.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"no-wallclock", "seeded-rand", "float-eq", "goroutine-discipline",
		"panic-audit", "buf-ownership", "hotpath-alloc", "map-order",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", a.Name)
		}
	}
}

type want struct{ re *regexp.Regexp }

var (
	wantLineRE   = regexp.MustCompile(`// want (.+)$`)
	wantStringRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// collectWants maps "file.go:line" to the expectations on that line.
func collectWants(dir string) (map[string][]*want, error) {
	wants := map[string][]*want{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, q := range wantStringRE.FindAllString(m[1], -1) {
				pattern, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want string %s: %v", key, q, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", key, pattern, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants, nil
}

// TestRepoIsClean is meshlint run over this repository itself: the module
// must stay free of findings, so CI can enforce the invariants with
// "go run ./cmd/meshlint ./..." and this test keeps that guarantee under
// plain "go test ./...".
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	allow, err := LoadAllowlist(filepath.Join(m.Root, ".meshlint-allow"))
	if err != nil {
		t.Fatalf("LoadAllowlist: %v", err)
	}
	for _, d := range Run(m, Analyzers(), allow) {
		t.Errorf("%s", d)
	}
}

// TestPanicInventoryOnRepo sanity-checks the audit half of panic-audit:
// the repository has many deliberate invariant panics, every one of the
// reachable ones must carry its lint:invariant annotation.
func TestPanicInventoryOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	inv := PanicInventory(m)
	if len(inv) == 0 {
		t.Fatal("panic inventory is empty; the walker is broken")
	}
	reachable := 0
	for _, s := range inv {
		if s.Reachable {
			reachable++
			if !s.Allowed {
				t.Errorf("%s:%d: reachable panic in %s lacks a lint:invariant annotation", s.Pos.Filename, s.Pos.Line, s.Fn)
			}
		}
	}
	if reachable == 0 {
		t.Error("no panic is reachable from the exported API; the reachability walk is broken")
	}
}

func TestAllowlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "allow")
	content := "# comment\n\nfloat-eq internal/netsim/trace.go:123\npanic-audit internal/tensor\n* cmd/meshslice/main.go\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	al, err := LoadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rule, rel string
		line      int
		want      bool
	}{
		{"float-eq", "internal/netsim/trace.go", 123, true},
		{"float-eq", "internal/netsim/trace.go", 124, false},
		{"panic-audit", "internal/tensor/matrix.go", 7, true},
		{"panic-audit", "internal/tensorx/matrix.go", 7, false},
		{"seeded-rand", "cmd/meshslice/main.go", 1, true},
		{"seeded-rand", "cmd/meshslice/plan.go", 1, false},
	}
	for _, c := range cases {
		if got := al.Allows(c.rule, c.rel, c.line); got != c.want {
			t.Errorf("Allows(%q, %q, %d) = %v, want %v", c.rule, c.rel, c.line, got, c.want)
		}
	}
	if missing, err := LoadAllowlist(filepath.Join(dir, "nope")); err != nil || len(missing.entries) != 0 {
		t.Errorf("missing allowlist: got %v entries, err %v; want empty, nil", missing, err)
	}
}
