package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PanicSite is one panic(...) call in non-test code, attributed to the
// top-level function whose body (including nested function literals)
// contains it. Exported for the cmd/meshlint -panics inventory.
type PanicSite struct {
	Pos       token.Position
	Fn        string // qualified name of the enclosing declared function
	Reachable bool   // reachable from the root package's exported API
	Allowed   bool   // carries a lint:invariant directive
}

func analyzePanics() *Analyzer {
	return &Analyzer{
		Name: "panic-audit",
		Doc: "inventory every panic site and fail on panics reachable from the root package's " +
			"exported API unless marked as a deliberate invariant check with a lint:invariant comment",
		Run: func(m *Module, report func(pos token.Pos, format string, args ...any)) {
			for _, site := range panicInventory(m) {
				if site.Reachable && !site.Allowed {
					report(site.pos, "panic in %s is reachable from the exported API of %s; return an error, or mark a deliberate invariant check with a lint:invariant comment",
						site.Fn, m.Path)
				}
			}
		},
	}
}

// PanicInventory classifies every panic site in non-test module code by
// reachability from the root package's exported API.
func PanicInventory(m *Module) []PanicSite {
	sites := panicInventory(m)
	out := make([]PanicSite, len(sites))
	for i, s := range sites {
		out[i] = s.PanicSite
	}
	return out
}

type panicSite struct {
	PanicSite
	pos token.Pos
}

// panicInventory collects every panic site in non-test module code and
// classifies it by API reachability over the shared cross-package call
// graph (Module.CallGraph): the graph is walked from the root package's
// exported surface, and any function the walk reaches carries its panics
// into the public API. Panics inside function literals are attributed to
// the declared function that lexically contains them, which is exactly
// right for this codebase's dominant pattern (SPMD closures handed to
// mesh.Run).
func panicInventory(m *Module) []panicSite {
	panics := map[string][]panicSite{}
	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			caller := fn.FullName()
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pos := m.Fset.Position(call.Pos())
					file := m.fileAt(pos.Filename)
					panics[caller] = append(panics[caller], panicSite{
						PanicSite: PanicSite{
							Pos:     pos,
							Fn:      caller,
							Allowed: file != nil && file.Allows("panic-audit", pos.Line),
						},
						pos: call.Pos(),
					})
				}
				return true
			})
		}
	})

	reachable := m.CallGraph().ReachableFrom(m.apiRoots())
	var out []panicSite
	for fn, sites := range panics {
		for _, s := range sites {
			s.Reachable = reachable[fn]
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
