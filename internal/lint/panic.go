package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PanicSite is one panic(...) call in non-test code, attributed to the
// top-level function whose body (including nested function literals)
// contains it. Exported for the cmd/meshlint -panics inventory.
type PanicSite struct {
	Pos       token.Position
	Fn        string // qualified name of the enclosing declared function
	Reachable bool   // reachable from the root package's exported API
	Allowed   bool   // carries a lint:invariant directive
}

func analyzePanics() *Analyzer {
	return &Analyzer{
		Name: "panic-audit",
		Doc: "inventory every panic site and fail on panics reachable from the root package's " +
			"exported API unless marked as a deliberate invariant check with a lint:invariant comment",
		Run: func(m *Module, report func(pos token.Pos, format string, args ...any)) {
			for _, site := range panicInventory(m) {
				if site.Reachable && !site.Allowed {
					report(site.pos, "panic in %s is reachable from the exported API of %s; return an error, or mark a deliberate invariant check with a lint:invariant comment",
						site.Fn, m.Path)
				}
			}
		},
	}
}

// PanicInventory classifies every panic site in non-test module code by
// reachability from the root package's exported API.
func PanicInventory(m *Module) []PanicSite {
	sites := panicInventory(m)
	out := make([]PanicSite, len(sites))
	for i, s := range sites {
		out[i] = s.PanicSite
	}
	return out
}

type panicSite struct {
	PanicSite
	pos token.Pos
}

// panicInventory builds the module's static call graph and walks it from
// the exported surface. Functions are keyed by their qualified name
// (types.Func.FullName) rather than object identity, because packages with
// in-package tests are type-checked twice — once test-free for importers,
// once with tests for analysis — and the two checks mint distinct objects
// for the same function.
//
// The graph is a static under-approximation: direct calls and concrete
// method calls are edges; calls through interfaces or function values are
// not. Panics inside function literals are attributed to the declared
// function that lexically contains them, which is exactly right for this
// codebase's dominant pattern (SPMD closures handed to mesh.Run).
func panicInventory(m *Module) []panicSite {
	calls := map[string]map[string]bool{} // caller FullName -> callee FullNames
	panics := map[string][]panicSite{}

	m.eachFile(func(p *Package, f *File) {
		if f.Test {
			return
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			caller := fn.FullName()
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var obj types.Object
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					obj = p.Info.Uses[fun]
				case *ast.SelectorExpr:
					obj = p.Info.Uses[fun.Sel]
				}
				switch callee := obj.(type) {
				case *types.Func:
					if calls[caller] == nil {
						calls[caller] = map[string]bool{}
					}
					calls[caller][callee.FullName()] = true
				case *types.Builtin:
					if callee.Name() == "panic" {
						pos := m.Fset.Position(call.Pos())
						file := m.fileAt(pos.Filename)
						panics[caller] = append(panics[caller], panicSite{
							PanicSite: PanicSite{
								Pos:     pos,
								Fn:      caller,
								Allowed: file != nil && file.Allows("panic-audit", pos.Line),
							},
							pos: call.Pos(),
						})
					}
				}
				return true
			})
		}
	})

	reachable := reachableFuncs(m, calls)
	var out []panicSite
	for fn, sites := range panics {
		for _, s := range sites {
			s.Reachable = reachable[fn]
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// reachableFuncs walks the call graph from the root package's exported
// surface: its exported functions, and the exported methods of every named
// type an exported type name of the root package denotes (the facade
// re-exports internal types by alias, which makes those methods public API).
func reachableFuncs(m *Module, calls map[string]map[string]bool) map[string]bool {
	var roots []string
	for _, pkg := range m.Packages {
		if pkg.Path != m.Path || pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			switch obj := obj.(type) {
			case *types.Func:
				roots = append(roots, obj.FullName())
			case *types.TypeName:
				if named, ok := obj.Type().(*types.Named); ok {
					for i := 0; i < named.NumMethods(); i++ {
						if method := named.Method(i); method.Exported() {
							roots = append(roots, method.FullName())
						}
					}
				}
			}
		}
	}
	reachable := map[string]bool{}
	var visit func(fn string)
	visit = func(fn string) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		for callee := range calls[fn] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return reachable
}
