package topology

import (
	"testing"
	"testing/quick"
)

func TestRankCoordRoundTrip(t *testing.T) {
	tor := NewTorus(3, 4)
	for r := 0; r < tor.Size(); r++ {
		if got := tor.Rank(tor.Coord(r)); got != r {
			t.Errorf("Rank(Coord(%d)) = %d", r, got)
		}
	}
}

func TestCoordLayoutRowMajor(t *testing.T) {
	tor := NewTorus(2, 3)
	if c := tor.Coord(4); c != (Coord{Row: 1, Col: 1}) {
		t.Errorf("Coord(4) = %v, want (1,1)", c)
	}
	if r := tor.Rank(Coord{Row: 1, Col: 2}); r != 5 {
		t.Errorf("Rank((1,2)) = %d, want 5", r)
	}
}

func TestNewTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewTorus(0,3) should panic")
		}
	}()
	NewTorus(0, 3)
}

func TestRingSizeAndPosition(t *testing.T) {
	tor := NewTorus(3, 5)
	if tor.RingSize(InterRow) != 3 {
		t.Errorf("vertical ring size = %d, want 3", tor.RingSize(InterRow))
	}
	if tor.RingSize(InterCol) != 5 {
		t.Errorf("horizontal ring size = %d, want 5", tor.RingSize(InterCol))
	}
	c := Coord{Row: 2, Col: 4}
	if tor.RingPosition(c, InterRow) != 2 {
		t.Errorf("InterRow position = %d, want 2", tor.RingPosition(c, InterRow))
	}
	if tor.RingPosition(c, InterCol) != 4 {
		t.Errorf("InterCol position = %d, want 4", tor.RingPosition(c, InterCol))
	}
}

func TestRingMembers(t *testing.T) {
	tor := NewTorus(2, 3)
	row := tor.Ring(Coord{Row: 1, Col: 0}, InterCol)
	want := []Coord{{1, 0}, {1, 1}, {1, 2}}
	if len(row) != len(want) {
		t.Fatalf("Ring length = %d, want %d", len(row), len(want))
	}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("Ring[%d] = %v, want %v", i, row[i], want[i])
		}
	}
	col := tor.Ring(Coord{Row: 0, Col: 2}, InterRow)
	wantCol := []Coord{{0, 2}, {1, 2}}
	for i := range wantCol {
		if col[i] != wantCol[i] {
			t.Errorf("column Ring[%d] = %v, want %v", i, col[i], wantCol[i])
		}
	}
}

func TestNextPrevWrapAround(t *testing.T) {
	tor := NewTorus(3, 3)
	if n := tor.Next(Coord{2, 1}, InterRow); n != (Coord{0, 1}) {
		t.Errorf("Next wraps to %v, want (0,1)", n)
	}
	if p := tor.Prev(Coord{0, 1}, InterRow); p != (Coord{2, 1}) {
		t.Errorf("Prev wraps to %v, want (2,1)", p)
	}
	if n := tor.Next(Coord{1, 2}, InterCol); n != (Coord{1, 0}) {
		t.Errorf("Next wraps to %v, want (1,0)", n)
	}
}

// Property: Prev(Next(c)) == c for every chip and direction.
func TestNextPrevInverseProperty(t *testing.T) {
	f := func(rows8, cols8, rank8 uint8) bool {
		rows, cols := int(rows8%6)+1, int(cols8%6)+1
		tor := NewTorus(rows, cols)
		c := tor.Coord(int(rank8) % tor.Size())
		for _, d := range []Direction{InterRow, InterCol} {
			if tor.Prev(tor.Next(c, d), d) != c || tor.Next(tor.Prev(c, d), d) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: following Next around a ring visits exactly RingSize distinct
// chips and returns to the start.
func TestRingClosureProperty(t *testing.T) {
	f := func(rows8, cols8, rank8, dir8 uint8) bool {
		rows, cols := int(rows8%5)+1, int(cols8%5)+1
		tor := NewTorus(rows, cols)
		c := tor.Coord(int(rank8) % tor.Size())
		d := Direction(int(dir8) % 2)
		seen := map[Coord]bool{}
		cur := c
		for i := 0; i < tor.RingSize(d); i++ {
			if seen[cur] {
				return false
			}
			seen[cur] = true
			cur = tor.Next(cur, d)
		}
		return cur == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRingPeer(t *testing.T) {
	tor := NewTorus(4, 2)
	if p := tor.RingPeer(Coord{1, 1}, InterRow, 3); p != (Coord{3, 1}) {
		t.Errorf("RingPeer = %v, want (3,1)", p)
	}
	if p := tor.RingPeer(Coord{1, 1}, InterCol, 0); p != (Coord{1, 0}) {
		t.Errorf("RingPeer = %v, want (1,0)", p)
	}
}

func TestIsSquare(t *testing.T) {
	if !NewTorus(4, 4).IsSquare() {
		t.Errorf("4x4 should be square")
	}
	if NewTorus(4, 2).IsSquare() {
		t.Errorf("4x2 should not be square")
	}
}

func TestMeshShapes(t *testing.T) {
	got := MeshShapes(12)
	want := []Torus{{1, 12}, {2, 6}, {3, 4}, {4, 3}, {6, 2}, {12, 1}}
	if len(got) != len(want) {
		t.Fatalf("MeshShapes(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MeshShapes(12)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if MeshShapes(0) != nil {
		t.Errorf("MeshShapes(0) should be nil")
	}
}

func TestMeshShapes2DExcludesDegenerate(t *testing.T) {
	for _, s := range MeshShapes2D(256) {
		if s.Rows < 2 || s.Cols < 2 {
			t.Errorf("MeshShapes2D returned degenerate %v", s)
		}
		if s.Size() != 256 {
			t.Errorf("shape %v has wrong size", s)
		}
	}
	if n := len(MeshShapes2D(256)); n != 7 { // 2x128..128x2
		t.Errorf("MeshShapes2D(256) count = %d, want 7", n)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if InterRow.Opposite() != InterCol || InterCol.Opposite() != InterRow {
		t.Errorf("Opposite broken")
	}
	if InterRow.String() != "inter-row" || InterCol.String() != "inter-col" {
		t.Errorf("String broken: %q %q", InterRow, InterCol)
	}
	if Direction(9).String() == "" {
		t.Errorf("unknown direction should still render")
	}
}

func TestStringRenderings(t *testing.T) {
	if got := NewTorus(4, 8).String(); got != "4x8 torus" {
		t.Errorf("Torus.String = %q", got)
	}
	if got := (Coord{Row: 1, Col: 2}).String(); got != "(1,2)" {
		t.Errorf("Coord.String = %q", got)
	}
}

func TestCoordOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Coord out of range should panic")
		}
	}()
	NewTorus(2, 2).Coord(4)
}
