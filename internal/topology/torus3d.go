package topology

import "fmt"

// InterDepth is the third communication direction of a 3D torus: traffic
// between the c layers of a P×P×c (2.5D GeMM) or Pr×Pc×c (MeshSlice+DP)
// cluster. Opposite is only meaningful between the two in-layer
// directions.
const InterDepth Direction = 2

// Torus3D is a Rows×Cols×Depth torus: Depth stacked 2D layers with depth
// rings connecting corresponding chips.
type Torus3D struct {
	Rows, Cols, Depth int
}

// NewTorus3D returns a 3D torus; all dimensions must be positive.
func NewTorus3D(rows, cols, depth int) Torus3D {
	if rows <= 0 || cols <= 0 || depth <= 0 {
		panic(fmt.Sprintf("topology: invalid 3D torus %dx%dx%d", rows, cols, depth))
	}
	return Torus3D{Rows: rows, Cols: cols, Depth: depth}
}

// Size returns the total chip count.
func (t Torus3D) Size() int { return t.Rows * t.Cols * t.Depth }

// Layer returns the 2D torus of one layer.
func (t Torus3D) Layer() Torus { return Torus{Rows: t.Rows, Cols: t.Cols} }

// Rank flattens (row, col, layer).
func (t Torus3D) Rank(row, col, layer int) int {
	if row < 0 || row >= t.Rows || col < 0 || col >= t.Cols || layer < 0 || layer >= t.Depth {
		panic(fmt.Sprintf("topology: coord (%d,%d,%d) out of range for %v", row, col, layer, t)) // lint:invariant bounds precondition
	}
	return (layer*t.Rows+row)*t.Cols + col
}

// Coord inverts Rank.
func (t Torus3D) Coord(rank int) (row, col, layer int) {
	if rank < 0 || rank >= t.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range for %v", rank, t)) // lint:invariant bounds precondition
	}
	col = rank % t.Cols
	rank /= t.Cols
	row = rank % t.Rows
	layer = rank / t.Rows
	return
}

// RingSize returns the chip count of a ring in the given direction.
func (t Torus3D) RingSize(d Direction) int {
	switch d {
	case InterRow:
		return t.Rows
	case InterCol:
		return t.Cols
	case InterDepth:
		return t.Depth
	default:
		panic(fmt.Sprintf("topology: unknown direction %d", int(d))) // lint:invariant exhaustive switch guard
	}
}

// RingMembers returns the ranks of the chip's ring in the given direction,
// ordered by ring position: the chip's in-layer column (InterRow), in-layer
// row (InterCol), or depth line (InterDepth).
func (t Torus3D) RingMembers(rank int, d Direction) []int {
	row, col, layer := t.Coord(rank)
	n := t.RingSize(d)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		switch d {
		case InterRow:
			out[i] = t.Rank(i, col, layer)
		case InterCol:
			out[i] = t.Rank(row, i, layer)
		case InterDepth:
			out[i] = t.Rank(row, col, i)
		}
	}
	return out
}

func (t Torus3D) String() string {
	return fmt.Sprintf("%dx%dx%d torus", t.Rows, t.Cols, t.Depth)
}
