// Package topology models the interconnect shapes used by the MeshSlice
// reproduction: rings (for 1D baselines and for the rows/columns of a mesh)
// and 2D tori (the TPUv4 ICI network, paper §2.2 and Fig. 8).
//
// A chip in a Pr×Pc torus is addressed by (row, col) or by its linear rank
// row*Pc + col. Every row of chips forms a horizontal ring and every column
// a vertical ring, which is what makes ring collectives (AllGather,
// ReduceScatter, Broadcast, Reduce) the natural communication primitives.
package topology

import "fmt"

// Direction distinguishes the two communication directions of a 2D mesh.
// Following the paper's vocabulary: inter-row communication travels
// vertically along a column of chips; inter-column communication travels
// horizontally along a row of chips.
type Direction int

const (
	// InterRow is vertical traffic: chips in the same column exchange data
	// across mesh rows (the paper's "row" subscript communications move
	// along these links when gathering down a column... see Torus.Ring).
	InterRow Direction = iota
	// InterCol is horizontal traffic: chips in the same row exchange data
	// across mesh columns.
	InterCol
)

func (d Direction) String() string {
	switch d {
	case InterRow:
		return "inter-row"
	case InterCol:
		return "inter-col"
	case InterDepth:
		return "inter-depth"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the other in-layer direction. It is meaningful only for
// the two directions of a 2D mesh; the depth direction is its own
// opposite.
func (d Direction) Opposite() Direction {
	switch d {
	case InterRow:
		return InterCol
	case InterCol:
		return InterRow
	default:
		return d
	}
}

// Coord is a chip position in a 2D mesh.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Torus is a Pr×Pc 2D torus of chips.
type Torus struct {
	Rows, Cols int
}

// NewTorus returns a torus with the given shape. Both dimensions must be
// positive.
func NewTorus(rows, cols int) Torus {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("topology: invalid torus shape %dx%d", rows, cols)) // lint:invariant shape precondition
	}
	return Torus{Rows: rows, Cols: cols}
}

// Size returns the total chip count.
func (t Torus) Size() int { return t.Rows * t.Cols }

// Rank returns the linear rank of coordinate c (row-major).
func (t Torus) Rank(c Coord) int {
	t.check(c)
	return c.Row*t.Cols + c.Col
}

// Coord returns the coordinate of linear rank r.
func (t Torus) Coord(r int) Coord {
	if r < 0 || r >= t.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range for %dx%d torus", r, t.Rows, t.Cols)) // lint:invariant bounds precondition
	}
	return Coord{Row: r / t.Cols, Col: r % t.Cols}
}

func (t Torus) check(c Coord) {
	if c.Row < 0 || c.Row >= t.Rows || c.Col < 0 || c.Col >= t.Cols {
		panic(fmt.Sprintf("topology: coord %v out of range for %dx%d torus", c, t.Rows, t.Cols)) // lint:invariant bounds precondition
	}
}

// RingSize returns the number of chips in a ring of the given direction:
// a vertical (inter-row) ring has Rows chips, a horizontal (inter-col)
// ring has Cols chips.
func (t Torus) RingSize(d Direction) int {
	if d == InterRow {
		return t.Rows
	}
	return t.Cols
}

// RingPosition returns the position of chip c within its ring of the given
// direction: its row index for vertical rings, column index for horizontal.
func (t Torus) RingPosition(c Coord, d Direction) int {
	t.check(c)
	if d == InterRow {
		return c.Row
	}
	return c.Col
}

// RingPeer returns the chip at position pos in the same ring as c for the
// given direction.
func (t Torus) RingPeer(c Coord, d Direction, pos int) Coord {
	t.check(c)
	if d == InterRow {
		if pos < 0 || pos >= t.Rows {
			panic(fmt.Sprintf("topology: ring position %d out of range for %d rows", pos, t.Rows)) // lint:invariant bounds precondition
		}
		return Coord{Row: pos, Col: c.Col}
	}
	if pos < 0 || pos >= t.Cols {
		panic(fmt.Sprintf("topology: ring position %d out of range for %d cols", pos, t.Cols)) // lint:invariant bounds precondition
	}
	return Coord{Row: c.Row, Col: pos}
}

// Ring returns the chips of c's ring in the given direction, ordered by
// ring position. For InterRow this is c's entire column; for InterCol it is
// c's entire row.
func (t Torus) Ring(c Coord, d Direction) []Coord {
	t.check(c)
	n := t.RingSize(d)
	out := make([]Coord, n)
	for i := 0; i < n; i++ {
		out[i] = t.RingPeer(c, d, i)
	}
	return out
}

// Next returns c's downstream ring neighbour in the given direction
// (wrapping torus links).
func (t Torus) Next(c Coord, d Direction) Coord {
	t.check(c)
	if d == InterRow {
		return Coord{Row: (c.Row + 1) % t.Rows, Col: c.Col}
	}
	return Coord{Row: c.Row, Col: (c.Col + 1) % t.Cols}
}

// Prev returns c's upstream ring neighbour in the given direction.
func (t Torus) Prev(c Coord, d Direction) Coord {
	t.check(c)
	if d == InterRow {
		return Coord{Row: (c.Row - 1 + t.Rows) % t.Rows, Col: c.Col}
	}
	return Coord{Row: c.Row, Col: (c.Col - 1 + t.Cols) % t.Cols}
}

// IsSquare reports whether the torus has equal dimensions (required by
// Cannon's algorithm, paper §2.3.2).
func (t Torus) IsSquare() bool { return t.Rows == t.Cols }

func (t Torus) String() string { return fmt.Sprintf("%dx%d torus", t.Rows, t.Cols) }

// MeshShapes enumerates every Pr×Pc factorisation of n chips, ordered by
// increasing Pr. These are the candidate cluster shapes the autotuner
// searches over (paper §3.2.2). Shapes with Pr==1 or Pc==1 degenerate to
// rings; they are included because the autotuner may legitimately pick them
// for extremely skewed matrices, and the 1D baselines use them.
func MeshShapes(n int) []Torus {
	if n <= 0 {
		return nil
	}
	var out []Torus
	for pr := 1; pr <= n; pr++ {
		if n%pr == 0 {
			out = append(out, Torus{Rows: pr, Cols: n / pr})
		}
	}
	return out
}

// MeshShapes2D is MeshShapes restricted to proper 2D shapes (both
// dimensions at least 2), the shapes a physical 2D torus can realise.
func MeshShapes2D(n int) []Torus {
	var out []Torus
	for _, t := range MeshShapes(n) {
		if t.Rows >= 2 && t.Cols >= 2 {
			out = append(out, t)
		}
	}
	return out
}
