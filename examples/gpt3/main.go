// GPT-3 training-step estimation: simulate the FC layers of GPT-3 under
// every distributed GeMM algorithm on a 64-chip TPUv4 cluster (weak
// scaling), and combine with the non-FC roofline into end-to-end step
// times — the experiment behind the paper's headline speedups.
package main

import (
	"fmt"

	"meshslice/internal/hw"
	"meshslice/internal/model"
	"meshslice/internal/train"
)

func main() {
	cfg := model.GPT3()
	chip := hw.TPUv4()
	const chips = 64
	tokens := cfg.WeakScalingTokens(chips)

	fmt.Printf("%s (%.0fB params), %d chips, batch %d × seq %d\n\n",
		cfg.Name, float64(cfg.ParamCount())/1e9, chips, chips/2, cfg.SeqLen)
	fmt.Printf("%-11s  %-11s  %-9s  %-9s  %-12s  %s\n",
		"algorithm", "mesh shape", "FC util", "FC/block", "step time", "vs MeshSlice")

	var msStep float64
	for _, algo := range train.Algos {
		r, err := train.EvaluateFC(cfg, tokens, chips, chip, algo, train.Options{OptimizeDataflow: true})
		if err != nil {
			fmt.Printf("%-11s  %v\n", algo, err)
			continue
		}
		step := train.EstimateStep(cfg, tokens, chips, chip, r)
		if algo == train.MeshSliceAlgo {
			msStep = step.Total
		}
		rel := ""
		if msStep > 0 && algo != train.MeshSliceAlgo {
			rel = fmt.Sprintf("%+.1f%%", 100*(step.Total/msStep-1))
		}
		fmt.Printf("%-11s  %-11v  %-9s  %-9s  %-12s  %s\n",
			algo, r.Shape,
			fmt.Sprintf("%.1f%%", 100*r.Utilization(chip)),
			fmt.Sprintf("%.2fms", r.Time*1e3),
			fmt.Sprintf("%.1fms", step.Total*1e3),
			rel)
	}
	fmt.Println("\nstep time = simulated FC time × layers + non-FC roofline estimate (paper §4.4)")
}
