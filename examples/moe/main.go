// Mixture-of-experts planning: the §6 extension. Build a 16-expert MoE on
// top of GPT-3's dimensions, and explore how the expert-parallel degree
// trades all-to-all routing cost against per-group GeMM efficiency — the
// new knob EP adds next to MeshSlice's mesh shape and slice count.
package main

import (
	"fmt"
	"log"

	"meshslice/internal/hw"
	"meshslice/internal/model"
	"meshslice/internal/moe"
	"meshslice/internal/topology"
)

func main() {
	cfg := moe.Config{Base: model.GPT3(), Experts: 16, TopK: 2}
	chip := hw.TPUv4()
	const totalChips = 256
	tokens := cfg.Base.WeakScalingTokens(totalChips)

	fmt.Printf("MoE-GPT-3: %d experts, top-%d, %.2fT params (dense base: %.0fB)\n",
		cfg.Experts, cfg.TopK,
		float64(cfg.ParamCount())/1e12, float64(cfg.Base.ParamCount())/1e9)
	fmt.Printf("%d chips, %d tokens per step\n\n", totalChips, tokens)

	fmt.Printf("%-22s  %-10s  %-10s  %-10s  %-10s  %s\n",
		"plan (EP × TP)", "dispatch", "experts", "combine", "attention", "block total")
	for _, plan := range []moe.Plan{
		{EPDegree: 1, TPShape: topology.NewTorus(32, 8)},
		{EPDegree: 2, TPShape: topology.NewTorus(16, 8)},
		{EPDegree: 4, TPShape: topology.NewTorus(8, 8)},
		{EPDegree: 8, TPShape: topology.NewTorus(4, 8)},
		{EPDegree: 16, TPShape: topology.NewTorus(4, 4)},
	} {
		if plan.Chips() != totalChips {
			log.Fatalf("plan %v uses %d chips", plan, plan.Chips())
		}
		est, err := moe.EstimateBlock(cfg, plan, tokens, chip)
		if err != nil {
			fmt.Printf("EP=%-2d %v: %v\n", plan.EPDegree, plan.TPShape, err)
			continue
		}
		fmt.Printf("EP=%-2d TP=%-12v  %-10s  %-10s  %-10s  %-10s  %s\n",
			plan.EPDegree, plan.TPShape,
			msStr(est.Dispatch), msStr(est.Expert), msStr(est.Combine),
			msStr(est.Attention), msStr(est.Total()))
	}
	fmt.Println("\nsmall EP keeps experts wide (good GeMMs, little routing); large EP")
	fmt.Println("localises experts but pays the all-to-all — the §6 trade-off in numbers.")
}

func msStr(v float64) string { return fmt.Sprintf("%.2fms", v*1e3) }
