// Algorithm zoo: run all five 2D GeMM algorithms (and the 1D baselines) on
// the same matrices over the functional mesh, check they agree exactly,
// then contrast their simulated timelines on a communication-bound problem
// — a textual version of the paper's Fig. 4.
package main

import (
	"fmt"
	"math/rand"

	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/netsim"
	"meshslice/internal/sched"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

func main() {
	// --- Functional agreement on a square mesh (the only shape Cannon
	// supports), OS dataflow, real data.
	tor := topology.NewTorus(4, 4)
	prob := gemm.Problem{M: 64, N: 64, K: 64, Dataflow: gemm.OS}
	rng := rand.New(rand.NewSource(7))
	a := tensor.Random(prob.M, prob.K, rng)
	b := tensor.Random(prob.K, prob.N, rng)
	want := prob.Reference(a, b)

	funcs := []struct {
		name string
		fn   gemm.ChipFunc
	}{
		{"MeshSlice", gemm.MeshSlice(gemm.OS, gemm.MeshSliceConfig{S: 4, Block: 2})},
		{"Collective", gemm.Collective2D(gemm.OS)},
		{"SUMMA", gemm.SUMMA(gemm.OS, gemm.SUMMAConfig{})},
		{"Cannon", gemm.Cannon()},
		{"Wang", gemm.Wang()},
	}
	fmt.Printf("functional check on %v (C = A·B, 64×64×64):\n", tor)
	for _, f := range funcs {
		got := gemm.Multiply(tor, f.fn, a, b)
		fmt.Printf("  %-10s max |Δ| = %.2e\n", f.name, got.MaxAbsDiff(want))
	}

	// --- Simulated timelines at LLM scale: who exposes how much
	// communication (Fig. 4 in numbers).
	chip := hw.TPUv4()
	big := gemm.Problem{M: 1 << 16, N: 12288, K: 12288, Dataflow: gemm.OS}
	simTor := topology.NewTorus(8, 8)
	progs := []*sched.Program{
		sched.MeshSliceProgram(big, simTor, chip, 8),
		sched.CollectiveProgram(big, simTor, chip),
		sched.SUMMAProgram(big, simTor, chip, 8),
		sched.CannonProgram(big, simTor, chip),
		sched.WangProgram(big, simTor, chip, 8),
	}
	fmt.Printf("\nsimulated timelines on %v (M=%d N=%d K=%d):\n", simTor, big.M, big.N, big.K)
	fmt.Printf("  %-18s %-10s %-10s %-10s %s\n", "algorithm", "makespan", "compute", "comm", "exposed comm")
	for _, p := range progs {
		r := netsim.Simulate(p, chip, netsim.Options{})
		fmt.Printf("  %-18s %-10s %-10s %-10s %s\n",
			p.Label,
			fmt.Sprintf("%.3fms", r.Makespan*1e3),
			fmt.Sprintf("%.3fms", r.ComputeBusy*1e3),
			fmt.Sprintf("%.3fms", r.Comm.Total()*1e3),
			fmt.Sprintf("%.3fms", r.ExposedComm*1e3))
	}
	fmt.Println("\nMeshSlice overlaps both directions; Wang exposes one; Collective exposes both;")
	fmt.Println("SUMMA pays bcast bubbles and syncs; Cannon pays skewing traffic.")
}
