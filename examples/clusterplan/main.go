// Cluster planner: the arithmetic behind the paper's §2.2 argument for 2D
// tensor parallelism. Given a model and per-chip HBM capacity, find the
// minimum TP degree that fits, show how the per-chip data-parallel gradient
// traffic shrinks as the TP degree grows, and reproduce the Llama-3
// thought experiment (8-way 1D TP vs 128-way 2D TP).
package main

import (
	"fmt"

	"meshslice/internal/memory"
	"meshslice/internal/model"
)

const hbmCapacity = 32 * float64(1<<30) // TPUv4: 32 GiB HBM

func main() {
	for _, cfg := range []model.Config{model.GPT3(), model.MegatronNLG()} {
		fmt.Printf("=== %s (%.0fB params) ===\n", cfg.Name, float64(cfg.ParamCount())/1e9)
		base := memory.Params{
			PPDegree:         8,
			TokensPerReplica: 2 * cfg.SeqLen,
			BytesPerParam:    2,
			SliceCount:       8,
		}
		fmt.Printf("%-10s  %-12s  %-12s  %-12s  %-8s  %s\n",
			"TP degree", "weights+grad", "optimizer", "activations", "total", "fits 32GiB?")
		for tp := 4; tp <= 256; tp *= 2 {
			p := base
			p.TPDegree = tp
			f, err := memory.Estimate(cfg, p)
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("%-10d  %-12s  %-12s  %-12s  %-8s  %v\n",
				tp,
				gib(f.Weights+f.Gradients), gib(f.OptimizerState),
				gib(f.Activations), gib(f.Total()),
				memory.FitsHBM(f, hbmCapacity))
		}
		min := memory.MinTPDegree(cfg, base, hbmCapacity, 1024)
		fmt.Printf("minimum TP degree at PP=8: %d-way", min)
		if min > 8 {
			fmt.Printf("  — beyond the 8-way cap of fully-connected 1D TP fabrics; 2D TP territory")
		}
		fmt.Println()

		// §2.2: replacing 8-way 1D TP with 128-way 2D TP shrinks the
		// per-chip DP gradient traffic 16x (each chip holds 1/128th of the
		// weights instead of 1/8th).
		dp8 := memory.DPTrafficPerChip(cfg, 8, 8, 4, 2)
		dp128 := memory.DPTrafficPerChip(cfg, 128, 8, 4, 2)
		fmt.Printf("per-chip DP gradient traffic: %-10s at 8-way TP → %-10s at 128-way 2D TP (%.0fx less)\n\n",
			gib(dp8), gib(dp128), dp8/dp128)
	}
}

func gib(v float64) string {
	return fmt.Sprintf("%.2fGiB", v/(1<<30))
}
