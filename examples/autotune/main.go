// Autotuner walkthrough: run both phases of the MeshSlice LLM autotuner on
// Megatron-NLG for a 256-chip cluster and show how the mesh shape and
// slice counts change the estimated FC time (the search of paper §3.2.2).
package main

import (
	"fmt"
	"log"

	"meshslice/internal/autotune"
	"meshslice/internal/hw"
	"meshslice/internal/model"
	"meshslice/internal/topology"
)

func main() {
	cfg := model.MegatronNLG()
	chip := hw.TPUv4()
	const chips = 256
	tokens := cfg.WeakScalingTokens(chips)

	// Phase 1: pick the dataflow keeping the largest matrix stationary.
	fmt.Println("phase 1 — dataflows (largest matrix stationary):")
	for _, plan := range autotune.PlanModel(cfg, tokens, true) {
		fmt.Printf("  %-8s (%d→%d): %v  fwd=%v bwd-data=%v bwd-weight=%v\n",
			plan.Layer.Name, plan.Layer.InDim, plan.Layer.OutDim, plan.Stationary,
			plan.Passes[model.Forward].Dataflow,
			plan.Passes[model.BackwardData].Dataflow,
			plan.Passes[model.BackwardWeight].Dataflow)
	}

	// Phase 2: exhaustive mesh-shape × slice-count search on the cost
	// models. Show the per-shape landscape, then the winner.
	fmt.Println("\nphase 2 — mesh shape landscape (estimated FC block time):")
	for _, shape := range topology.MeshShapes2D(chips) {
		c, err := autotune.Tune(cfg, tokens, chips, chip, autotune.Options{
			OptimizeDataflow: true, Shapes: []topology.Torus{shape},
		})
		if err != nil {
			fmt.Printf("  %-12v unusable (%v)\n", shape, err)
			continue
		}
		fmt.Printf("  %-12v %.3fms\n", shape, c.BlockTime*1e3)
	}

	best, err := autotune.Tune(cfg, tokens, chips, chip, autotune.Options{OptimizeDataflow: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen: %v, estimated %.3fms per block\n", best.Shape, best.BlockTime*1e3)
	fmt.Println("per-pass slice counts:")
	for _, lc := range best.Layers {
		fmt.Printf("  %-8s", lc.Plan.Layer.Name)
		for pass, pc := range lc.Passes {
			fmt.Printf("  %v:S=%-3d", model.Pass(pass), pc.S)
		}
		fmt.Println()
	}
}
