// Inference decode step: the memory-bound regime of paper §6. Each decode
// step multiplies a tiny batch×hidden activation against the full weight
// matrices, so arithmetic intensity collapses and the roofline — not the
// FLOPS throughput — governs the compute time. The autotuner's cost model
// handles this via hw.Chip.RooflineTime; this example contrasts the two
// regimes and shows the slice counts the autotuner picks for each.
package main

import (
	"fmt"

	"meshslice/internal/autotune"
	"meshslice/internal/costmodel"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/model"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

func main() {
	cfg := model.GPT3()
	chip := hw.TPUv4()
	shape := topology.NewTorus(8, 8)

	fmt.Printf("%s on a %v mesh — decode batch 64 vs training batch 32×2048\n\n", cfg.Name, shape)
	fmt.Printf("%-14s  %-24s  %-8s  %-10s  %s\n", "regime", "GeMM (M,N,K)", "best S", "est. time", "bound by")

	show := func(regime string, g model.GeMMShape) {
		prob := gemm.Problem{M: g.M, N: g.N, K: g.K, Dataflow: gemm.OS}
		pc, ok := autotune.TunePass(prob, shape, chip, 0)
		if !ok {
			fmt.Printf("%-14s  %s: cannot shard\n", regime, g.Name())
			return
		}
		// Classify: memory-bound if halving EffFLOPS would not change the
		// per-iteration compute estimate.
		fast := chip
		fast.EffFLOPS *= 2
		fast.PeakFLOPS *= 2
		altEst := costmodel.MeshSlice(prob, shape, fast, pc.S)
		bound := "compute"
		if tensor.AlmostEqual(altEst.ComputeTime, pc.Estimate.ComputeTime, 1e-12) {
			bound = "HBM (memory)"
		}
		fmt.Printf("%-14s  %-24s  S=%-6d  %-10s  %s\n",
			regime, fmt.Sprintf("%s (%d,%d,%d)", g.Layer, g.M, g.N, g.K),
			pc.S, fmt.Sprintf("%.3fms", pc.Estimate.Total()*1e3), bound)
	}

	for _, g := range cfg.InferenceGeMMs(64) {
		show("decode", g)
	}
	fmt.Println()
	tokens := 32 * cfg.SeqLen
	for _, g := range cfg.TrainingGeMMs(tokens) {
		if g.Pass == model.Forward {
			show("training", g)
		}
	}
	fmt.Println("\ndecode GeMMs hit the HBM roof: weights stream once per token, so the")
	fmt.Println("autotuner stops slicing aggressively — there is no compute to hide under.")
}
