// Inference on a 2D mesh, in two acts. Act one is the per-GeMM view: decode
// steps multiply a tiny batch×hidden activation against the full weight
// matrices, so arithmetic intensity collapses and the roofline — not the
// FLOPS throughput — governs compute time (paper §6), which is why the
// autotuner stops slicing aggressively for decode. Act two is the serving
// view: the same memory-bound steps, scheduled continuously over a seeded
// request trace, where mesh shape and batching policy turn into user-visible
// latency quantiles and goodput — the objective autotune.TuneServing ranks.
package main

import (
	"fmt"

	"meshslice/internal/autotune"
	"meshslice/internal/costmodel"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/model"
	"meshslice/internal/serve"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

func main() {
	cfg := model.GPT3()
	chip := hw.TPUv4()
	shape := topology.NewTorus(8, 8)

	fmt.Printf("%s on a %v mesh — decode batch 64 vs training batch 32×2048\n\n", cfg.Name, shape)
	fmt.Printf("%-14s  %-24s  %-8s  %-10s  %s\n", "regime", "GeMM (M,N,K)", "best S", "est. time", "bound by")

	show := func(regime string, g model.GeMMShape) {
		prob := gemm.Problem{M: g.M, N: g.N, K: g.K, Dataflow: gemm.OS}
		pc, ok := autotune.TunePass(prob, shape, chip, 0)
		if !ok {
			fmt.Printf("%-14s  %s: cannot shard\n", regime, g.Name())
			return
		}
		// Classify: memory-bound if halving EffFLOPS would not change the
		// per-iteration compute estimate.
		fast := chip
		fast.EffFLOPS *= 2
		fast.PeakFLOPS *= 2
		altEst := costmodel.MeshSlice(prob, shape, fast, pc.S)
		bound := "compute"
		if tensor.AlmostEqual(altEst.ComputeTime, pc.Estimate.ComputeTime, 1e-12) {
			bound = "HBM (memory)"
		}
		fmt.Printf("%-14s  %-24s  S=%-6d  %-10s  %s\n",
			regime, fmt.Sprintf("%s (%d,%d,%d)", g.Layer, g.M, g.N, g.K),
			pc.S, fmt.Sprintf("%.3fms", pc.Estimate.Total()*1e3), bound)
	}

	for _, g := range cfg.InferenceGeMMs(64) {
		show("decode", g)
	}
	fmt.Println()
	tokens := 32 * cfg.SeqLen
	for _, g := range cfg.TrainingGeMMs(tokens) {
		if g.Pass == model.Forward {
			show("training", g)
		}
	}
	fmt.Println("\ndecode GeMMs hit the HBM roof: weights stream once per token, so the")
	fmt.Println("autotuner stops slicing aggressively — there is no compute to hide under.")

	// Act two: serve a seeded Poisson trace through the continuous-batching
	// scheduler on two 16-chip shapes and compare what the shape choice does
	// to the latency tail and goodput.
	slo := serve.SLO{TTFT: 1.0, PerToken: 0.05}
	wl := serve.WorkloadSpec{Seed: 7, Rate: 12, Requests: 32}.Generate()
	const hbm = 64 * 1 << 30

	fmt.Printf("\nserving the same model: %d requests at 12 req/s, SLO TTFT %.1fs / %.0fms per token\n\n",
		len(wl), slo.TTFT, slo.PerToken*1e3)
	fmt.Printf("%-8s  %-10s  %-10s  %-12s  %-12s  %s\n",
		"shape", "TTFT p50", "TTFT p99", "tok p50", "tok p99", "goodput")
	for _, mesh := range []topology.Torus{{Rows: 4, Cols: 4}, {Rows: 2, Cols: 8}} {
		rep, err := serve.Run(serve.Config{
			Model: cfg, Chip: chip, Mesh: mesh, SLO: slo, HBMBytes: hbm,
		}, wl)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%-8s  %-10s  %-10s  %-12s  %-12s  %.2f req/s (%d/%d in SLO)\n",
			fmt.Sprintf("%dx%d", mesh.Rows, mesh.Cols),
			fmt.Sprintf("%.3fs", rep.TTFT.P50), fmt.Sprintf("%.3fs", rep.TTFT.P99),
			fmt.Sprintf("%.1fms", rep.PerToken.P50*1e3), fmt.Sprintf("%.1fms", rep.PerToken.P99*1e3),
			rep.Goodput, rep.SLOMet, rep.Completed)
	}

	choice, err := autotune.TuneServing(cfg, 16, chip, slo, wl, autotune.ServingOptions{HBMBytes: hbm})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("\nTuneServing picks %dx%d (S=%d, max-batch %d, chunk %d): %.2f req/s goodput\n",
		choice.Shape.Rows, choice.Shape.Cols, choice.Policy.SliceCount,
		choice.Policy.MaxBatch, choice.Policy.ChunkTokens, choice.Report.Goodput)
	fmt.Println("the tuner trades the decode batch's per-step latency against prefill")
	fmt.Println("chunking: big chunks cut TTFT but stretch every co-scheduled decode step.")
}
