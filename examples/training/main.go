// End-to-end distributed training demo: train a two-layer MLP with
// MeshSlice 2D tensor parallelism on a functional 2×4 mesh — forward OS,
// backward-data LS, backward-weight RS (Table 1's composition, with no
// transposes or resharding between steps) — and verify every weight and
// every loss value against serial training.
package main

import (
	"fmt"
	"log"

	"meshslice/internal/minitrain"
	"meshslice/internal/topology"
)

func main() {
	cfg := minitrain.Config{
		Batch: 32, In: 32, Hidden: 64, Out: 16,
		LR: 0.05, S: 4, Block: 2,
	}
	tor := topology.NewTorus(2, 4)
	const steps, seed = 25, 42
	data := minitrain.NewData(cfg, seed)

	fmt.Printf("training a %d→%d→%d MLP (batch %d) for %d steps\n",
		cfg.In, cfg.Hidden, cfg.Out, cfg.Batch, steps)
	fmt.Printf("distributed: %v mesh, MeshSlice S=%d — serial: one node\n\n", tor, cfg.S)

	serial := minitrain.TrainSerial(cfg, data, steps, seed)
	dist, err := minitrain.TrainDistributed(cfg, tor, data, steps, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s  %-14s  %-14s\n", "step", "serial loss", "distributed loss")
	for s := 0; s < steps; s += 5 {
		fmt.Printf("%-6d  %-14.6f  %-14.6f\n", s, serial.Losses[s], dist.Losses[s])
	}
	fmt.Printf("%-6d  %-14.6f  %-14.6f\n", steps-1, serial.Losses[steps-1], dist.Losses[steps-1])

	fmt.Printf("\nfinal weight divergence: |ΔW1| = %.2e, |ΔW2| = %.2e\n",
		dist.W1.MaxAbsDiff(serial.W1), dist.W2.MaxAbsDiff(serial.W2))
	fmt.Println("the Table 1 dataflows (OS fwd, LS bwd-data, RS bwd-weight) compose exactly:")
	fmt.Println("every tensor keeps its sharding across all three computations of every step.")

	// The full 3D cluster of paper §2.1: 2 data-parallel replicas × 2
	// pipeline stages (4 microbatches, gradient accumulation) × the 2×4
	// tensor-parallel mesh = 32 chips, still exactly serial training.
	d3, err := minitrain.TrainDistributed3D(cfg, tor, 2, 4, data, steps, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3D cluster (DP=2 × PP=2 × TP=%v = %d chips):\n", tor, 2*2*tor.Size())
	fmt.Printf("  final loss %.6f (serial %.6f), |ΔW1| = %.2e, |ΔW2| = %.2e\n",
		d3.Losses[steps-1], serial.Losses[steps-1],
		d3.W1.MaxAbsDiff(serial.W1), d3.W2.MaxAbsDiff(serial.W2))
	fmt.Println("  data, pipeline, and tensor parallelism compose without approximation.")
}
