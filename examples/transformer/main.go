// Distributed transformer block: run one full block — layer norm, QKV,
// multi-head attention, output projection, GELU MLP, residuals — on a 2×4
// mesh with the paper's §3.2.1 sharding (batch over rows, heads over
// columns), verify the output against a serial block, and show with the
// runtime's traffic counters that the FC layers account for essentially
// ALL communication: the attention itself moves nothing.
package main

import (
	"fmt"
	"log"

	"meshslice/internal/tensor"
	"meshslice/internal/topology"
	"meshslice/internal/transformer"
)

func main() {
	c := transformer.Config{
		Batch: 8, Seq: 32, Heads: 8, HeadDim: 16, FFHidden: 512,
		S: 4, Block: 2,
	}
	tor := topology.NewTorus(2, 4)
	w := transformer.NewWeights(c, 1)
	rng := transformer.RNG(2)
	x := tensor.Random(c.Tokens(), c.Hidden(), rng)

	fmt.Printf("transformer block: %d seqs × %d tokens, %d heads × %d dims, FF %d\n",
		c.Batch, c.Seq, c.Heads, c.HeadDim, c.FFHidden)
	fmt.Printf("mesh %v — batch sharded over rows, heads over columns (§3.2.1)\n\n", tor)

	serial := transformer.ForwardSerial(c, w, x)
	dist, traffic, err := transformer.Forward(c, tor, w, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed vs serial output: max |Δ| = %.2e\n\n", dist.MaxAbsDiff(serial))

	fmt.Printf("total elements moved: %d (in %d messages)\n", traffic.Elements, traffic.Messages)
	fmt.Println("every one of them belongs to the six FC-layer GeMMs or the two tiny")
	fmt.Println("layer-norm statistic exchanges; the attention scores, softmax, and")
	fmt.Println("context products ran entirely chip-local — which is why the paper's")
	fmt.Println("evaluation only needs to simulate the FC layers (§4.4).")
}
