// Quickstart: run the MeshSlice 2D GeMM algorithm on a functional 4×2 mesh
// with real data, verify it against a single-node reference multiplication,
// and estimate its execution time on a simulated TPUv4 cluster.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"meshslice/internal/costmodel"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/netsim"
	"meshslice/internal/sched"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

func main() {
	// A 4×2 mesh of chips computing C = A·B with the output-stationary
	// dataflow, slicing each collective into S=4 partial collectives.
	tor := topology.NewTorus(4, 2)
	prob := gemm.Problem{M: 64, N: 32, K: 64, Dataflow: gemm.OS}
	cfg := gemm.MeshSliceConfig{S: 4, Block: 2}
	if err := cfg.Validate(prob, tor); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	a := tensor.Random(prob.M, prob.K, rng)
	b := tensor.Random(prob.K, prob.N, rng)

	// Functional run: every chip is a goroutine, the collectives move real
	// sub-shards, and the assembled result must equal the reference.
	got := gemm.Multiply(tor, gemm.MeshSlice(prob.Dataflow, cfg), a, b)
	want := prob.Reference(a, b)
	fmt.Printf("MeshSlice on %v, S=%d: max |Δ| vs reference = %.2e\n",
		tor, cfg.S, got.MaxAbsDiff(want))

	// Timing run: the same algorithm as a schedule on the TPUv4 cluster
	// model, at LLM scale (a GPT-3 attention-projection GeMM, 8 chips).
	chip := hw.TPUv4()
	big := gemm.Problem{M: 1 << 14, N: 12288, K: 12288, Dataflow: gemm.OS}
	for _, s := range []int{1, 2, 4, 8} {
		prog := sched.MeshSliceProgram(big, tor, chip, s)
		r := netsim.Simulate(prog, chip, netsim.Options{})
		est := costmodel.MeshSlice(big, tor, chip, s)
		fmt.Printf("S=%-2d simulated %.3fms (cost model %.3fms), exposed comm %.3fms\n",
			s, r.Makespan*1e3, est.Total()*1e3, r.ExposedComm*1e3)
	}
	fmt.Println("slicing (S>1) hides communication under the partial GeMMs.")
}
