module meshslice

go 1.22
