// Package meshslice reproduces "MeshSlice: Efficient 2D Tensor Parallelism
// for Distributed DNN Training" (ISCA 2025): the MeshSlice sliced-collective
// 2D GeMM algorithm, the baselines it is evaluated against (Cannon, SUMMA,
// Collective 2D GeMM, Wang's algorithm, 1D TP, FSDP), a functional SPMD
// mesh runtime for correctness, a discrete-event TPUv4 cluster simulator
// for performance, the analytical cost models, and the MeshSlice LLM
// autotuner.
//
// This file is the public facade: it re-exports the library's main entry
// points so downstream users need a single import. The implementation
// lives in the internal packages, one per subsystem:
//
//	internal/tensor     dense matrices, GeMM kernels, blocked slicing
//	internal/topology   rings and 2D tori
//	internal/mesh       goroutine-per-chip SPMD runtime
//	internal/collective ring AllGather/ReduceScatter/Broadcast/Reduce
//	internal/gemm       the distributed GeMM algorithms (functional)
//	internal/hw         TPUv4-like hardware parameters
//	internal/des        discrete-event kernel
//	internal/sched      algorithm → operation-DAG schedules
//	internal/netsim     the cluster simulator
//	internal/costmodel  the autotuner's analytical models
//	internal/autotune   the two-phase LLM autotuner
//	internal/model      GPT-3 and Megatron-NLG definitions
//	internal/train      FC-layer evaluation and step-time estimation
//	internal/experiments the paper's tables and figures
package meshslice

import (
	"meshslice/internal/autotune"
	"meshslice/internal/cluster"
	"meshslice/internal/costmodel"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/memory"
	"meshslice/internal/model"
	"meshslice/internal/netsim"
	"meshslice/internal/sched"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
	"meshslice/internal/train"
)

// Core data types.
type (
	// Matrix is a dense row-major float64 matrix.
	Matrix = tensor.Matrix
	// Torus is a 2D torus of chips.
	Torus = topology.Torus
	// Problem describes a distributed GeMM (M×N result, K inner, dataflow).
	Problem = gemm.Problem
	// Dataflow selects the stationary matrix (OS, LS, RS).
	Dataflow = gemm.Dataflow
	// Chip holds the hardware calibration of one accelerator.
	Chip = hw.Chip
	// MeshSliceConfig parameterises the MeshSlice algorithm (S, block).
	MeshSliceConfig = gemm.MeshSliceConfig
	// LLM describes a transformer model (GPT-3, Megatron-NLG, or custom).
	LLM = model.Config
	// SimOptions selects cluster-simulator behaviours.
	SimOptions = netsim.Options
	// SimResult is a simulation outcome (makespan, breakdown, overlap).
	SimResult = netsim.Result
	// TuneChoice is the autotuner's output.
	TuneChoice = autotune.Choice
	// CostEstimate is an analytical prologue/steady/epilogue estimate.
	CostEstimate = costmodel.Estimate
)

// Dataflows.
const (
	OS = gemm.OS
	LS = gemm.LS
	RS = gemm.RS
)

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.New(rows, cols) }

// NewTorus returns a rows×cols torus.
func NewTorus(rows, cols int) Torus { return topology.NewTorus(rows, cols) }

// TPUv4 returns the default hardware calibration.
func TPUv4() Chip { return hw.TPUv4() }

// GPT3 and MegatronNLG return the evaluated LLM configurations.
func GPT3() LLM        { return model.GPT3() }
func MegatronNLG() LLM { return model.MegatronNLG() }

// Multiply runs the MeshSlice algorithm functionally: it shards the global
// operands onto a fresh mesh of the given shape, executes the S-way sliced
// 2D GeMM with one goroutine per chip and real ring collectives, and
// assembles the global result. The interpretation of a and b follows the
// problem's dataflow (OS: C=A·B, LS: C=A·Bᵀ, RS: C=Aᵀ·B).
func Multiply(p Problem, t Torus, cfg MeshSliceConfig, a, b *Matrix) (*Matrix, error) {
	if err := cfg.Validate(p, t); err != nil {
		return nil, err
	}
	return gemm.Multiply(t, gemm.MeshSlice(p.Dataflow, cfg), a, b), nil
}

// Simulate estimates the execution of the MeshSlice algorithm for the
// problem on a cluster of the given shape, returning the makespan and the
// communication breakdown from the discrete-event TPUv4 model.
func Simulate(p Problem, t Torus, chip Chip, s int, opts SimOptions) SimResult {
	return netsim.Simulate(sched.MeshSliceProgram(p, t, chip, s), chip, opts)
}

// EstimateCost evaluates the autotuner's analytical cost model for the
// problem (paper §3.2.2).
func EstimateCost(p Problem, t Torus, chip Chip, s int) CostEstimate {
	return costmodel.MeshSlice(p, t, chip, s)
}

// Tune runs the two-phase MeshSlice LLM autotuner: dataflow selection,
// then mesh-shape × slice-count co-optimisation over the cost models.
func Tune(cfg LLM, tokens, chips int, chip Chip) (TuneChoice, error) {
	return autotune.Tune(cfg, tokens, chips, chip, autotune.Options{OptimizeDataflow: true})
}

// TrainStep simulates one transformer block's FC layers under MeshSlice on
// the best mesh shape and returns the end-to-end step-time estimate.
func TrainStep(cfg LLM, tokens, chips int, chip Chip) (train.StepResult, error) {
	fc, err := train.EvaluateFC(cfg, tokens, chips, chip, train.MeshSliceAlgo,
		train.Options{OptimizeDataflow: true})
	if err != nil {
		return train.StepResult{}, err
	}
	return train.EstimateStep(cfg, tokens, chips, chip, fc), nil
}

// Additional facade types for the planning subsystems.
type (
	// MemoryFootprint is a per-chip HBM budget breakdown.
	MemoryFootprint = memory.Footprint
	// MemoryParams configures a footprint estimate.
	MemoryParams = memory.Params
	// ClusterPlan is a 3D DP×PP×TP parallelisation.
	ClusterPlan = cluster.Plan
	// ClusterEvaluation is a plan's estimated cost breakdown.
	ClusterEvaluation = cluster.Evaluation
)

// EstimateMemory returns the per-chip HBM footprint of training cfg under
// the given parallelism parameters.
func EstimateMemory(cfg LLM, p MemoryParams) (MemoryFootprint, error) {
	return memory.Estimate(cfg, p)
}

// PlanCluster searches 3D parallelisation plans (data × pipeline × tensor)
// for a cluster of totalChips training globalBatch sequences, returning
// feasible plans fastest-first. max1DTP caps the 1D tensor-parallel degree
// (8 on fully-connected fabrics); 2D TP is uncapped.
func PlanCluster(cfg LLM, totalChips, globalBatch int, chip Chip, max1DTP int) []ClusterEvaluation {
	return cluster.Search(cfg, totalChips, globalBatch, chip, max1DTP, cluster.Options{})
}

// LoadChipProfile reads a JSON hardware calibration (missing fields inherit
// the TPUv4 defaults).
func LoadChipProfile(path string) (Chip, error) { return hw.LoadProfileFile(path) }

// LoadModelConfig reads a JSON LLM description.
func LoadModelConfig(path string) (LLM, error) { return model.LoadFile(path) }
