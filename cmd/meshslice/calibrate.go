package main

import (
	"flag"
	"fmt"
	"os"

	"meshslice/internal/calibrate"
	"meshslice/internal/hw"
)

// cmdCalibrate reproduces §4.5's calibration flow: benchmark ring
// collectives on small simulated clusters across shard sizes, fit the
// linear model, report the recovered parameters, and optionally write them
// out as a hardware profile.
func cmdCalibrate(args []string) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	hwFile := fs.String("hw", "", "ground-truth calibration profile to measure (default TPUv4)")
	out := fs.String("o", "", "write the fitted profile to this JSON file")
	fs.Parse(args)

	truth := hw.TPUv4()
	if *hwFile != "" {
		var err error
		truth, err = hw.LoadProfileFile(*hwFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// The paper's setup: 2- and 4-chip clusters, shards from 8 KB to 512 MB.
	rings := []int{2, 4}
	shards := []float64{8 << 10, 256 << 10, 8 << 20, 64 << 20, 512 << 20}
	samples := calibrate.Measure(truth, rings, shards)
	fmt.Printf("measured %d collective executions (%v-chip rings, 8KB–512MB shards)\n\n", len(samples), rings)

	fit, err := calibrate.Fit(samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-16s  %-14s  %-14s\n", "parameter", "ground truth", "fitted")
	fmt.Printf("%-16s  %-14s  %-14s\n", "bandwidth", fmt.Sprintf("%.2f GB/s", truth.LinkBandwidth/1e9), fmt.Sprintf("%.2f GB/s", fit.Bandwidth/1e9))
	fmt.Printf("%-16s  %-14s  %-14s\n", "t_sync", fmt.Sprintf("%.2f µs", truth.SyncLatency*1e6), fmt.Sprintf("%.2f µs", fit.SyncLatency*1e6))
	fmt.Printf("%-16s  %-14s  %-14s\n", "t_launch", fmt.Sprintf("%.2f µs", truth.LaunchOverhead*1e6), fmt.Sprintf("%.2f µs", fit.LaunchOverhead*1e6))
	fmt.Printf("max residual: %.3g\n", fit.MaxResidual)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := hw.SaveProfile(f, fit.Apply(truth)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("fitted profile written to %s\n", *out)
	}
}
