package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"meshslice/internal/fault"
	"meshslice/internal/gemm"
	"meshslice/internal/mesh"
	"meshslice/internal/obs/recorder"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

// cmdRecord runs one distributed GeMM functionally with the flight
// recorder attached and exports the causal event log: canonical JSON (-o)
// and/or a Perfetto trace with per-chip spans and message-flow arrows
// (-chrome). With injected faults (-drop, -fail) the run dies with the
// typed error and the forensics dump prints instead — the post-mortem view
// of which chip was stuck where.
func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	m := fs.Int("m", 64, "result rows M")
	n := fs.Int("n", 64, "result cols N")
	k := fs.Int("k", 64, "inner dimension K")
	rows := fs.Int("rows", 4, "mesh rows")
	cols := fs.Int("cols", 4, "mesh cols")
	algoName := fs.String("algo", "meshslice", "algorithm: meshslice, collective, summa, cannon, or wang")
	dataflow := fs.String("dataflow", "os", "dataflow: os, ls, or rs")
	s := fs.Int("s", 2, "MeshSlice slice count")
	block := fs.Int("block", 2, "MeshSlice block size")
	pipelined := fs.Bool("pipelined", false, "run the double-buffered overlapped schedule (MeshSlice, Wang); the trace then shows comm lanes under compute spans")
	seed := fs.Int64("seed", 1, "input seed")
	capacity := fs.Int("cap", 0, "per-chip event-ring capacity (0 = default)")
	out := fs.String("o", "", "write canonical recorder JSON here")
	chrome := fs.String("chrome", "", "write Perfetto/Chrome trace here")
	drop := fs.String("drop", "", "inject a lost message: from:to:nth (repeatable, comma-separated)")
	failChip := fs.String("fail", "", "inject a chip fail-stop: chip:afterSends")
	fs.Parse(args)

	df, ok := dataflowByName(*dataflow)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataflow %q\n", *dataflow)
		os.Exit(2)
	}
	alg, ok := gemm.AlgorithmByName(*algoName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}
	if !alg.Supports(df) {
		fmt.Fprintf(os.Stderr, "%s does not implement the %v dataflow\n", alg.Name, df)
		os.Exit(2)
	}
	p := gemm.Problem{M: *m, N: *n, K: *k, Dataflow: df}
	tor := topology.NewTorus(*rows, *cols)
	opts := gemm.AlgOptions{S: *s, Block: *block, Pipelined: *pipelined}
	if err := alg.Validate(p, tor, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mh := mesh.New(tor)
	rec := recorder.New(tor.Size(), *capacity)
	mh.SetRecorder(rec)
	var faults fault.MeshFaults
	for _, spec := range splitNonEmpty(*drop) {
		from, to, nth, err := parseTriple(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -drop %q: %v\n", spec, err)
			os.Exit(2)
		}
		faults.Drops = append(faults.Drops, fault.EdgeDrop{From: from, To: to, Nth: nth})
	}
	if *failChip != "" {
		chip, after, err := parsePair(*failChip)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -fail %q: %v\n", *failChip, err)
			os.Exit(2)
		}
		faults.ChipFails = append(faults.ChipFails, fault.MeshChipFail{Chip: chip, AfterSends: after})
	}
	if !faults.Empty() {
		mh.SetFaults(faults)
	}

	rng := rand.New(rand.NewSource(*seed))
	aR, aC, bR, bC := p.OperandShapes()
	a := tensor.Random(aR, aC, rng)
	b := tensor.Random(bR, bC, rng)
	as := tensor.Partition(a, tor.Rows, tor.Cols)
	bs := tensor.Partition(b, tor.Rows, tor.Cols)
	fn := alg.Build(df, opts)

	shards := make([]*tensor.Matrix, tor.Size())
	var mu sync.Mutex
	err := mh.RunE(func(c *mesh.Chip) {
		res := fn(c, as[c.Rank], bs[c.Rank])
		mu.Lock()
		shards[c.Rank] = res
		mu.Unlock()
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "run died: %v\n", err)
		switch e := err.(type) {
		case *mesh.RecvStallError:
			fmt.Fprint(os.Stderr, e.Dump)
		case *mesh.ChipFailedError:
			fmt.Fprint(os.Stderr, e.Dump)
		}
		writeExports(rec, *out, *chrome, alg.Name, df)
		os.Exit(1)
	}

	got := tensor.Assemble(shards, tor.Rows, tor.Cols)
	diff := got.MaxAbsDiff(p.Reference(a, b))
	status := "ok"
	if diff > 1e-9 {
		status = "FAILED"
	}
	snap := rec.Snapshot()
	events := uint64(0)
	for _, l := range snap.Logs {
		events += l.Recorded
	}
	ov := rec.Overlap()
	fmt.Printf("%s %v on %v: %s (max |Δ| %.2e), %d events across %d chips, overlap %d/%d async ops (%.2f)\n",
		alg.Name, df, tor, status, diff, events, tor.Size(), ov.Overlapped, ov.AsyncOps, ov.Fraction)
	writeExports(rec, *out, *chrome, alg.Name, df)
	if status != "ok" {
		os.Exit(1)
	}
}

// writeExports writes the canonical JSON and/or Perfetto trace.
func writeExports(rec *recorder.Recorder, jsonPath, chromePath, algo string, df gemm.Dataflow) {
	label := fmt.Sprintf("%s %v", algo, df)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.Snapshot().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := recorder.WriteMeshChromeTrace(f, rec.Snapshot(), label); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
}

func dataflowByName(name string) (gemm.Dataflow, bool) {
	switch strings.ToLower(name) {
	case "os":
		return gemm.OS, true
	case "ls":
		return gemm.LS, true
	case "rs":
		return gemm.RS, true
	}
	return 0, false
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parseTriple(s string) (int, int, int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("want from:to:nth")
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return 0, 0, 0, err
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], nil
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want chip:afterSends")
	}
	a, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
