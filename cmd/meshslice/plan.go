package main

import (
	"flag"
	"fmt"

	"meshslice/internal/cluster"
	"meshslice/internal/hw"
)

// cmdPlan searches 3D parallelisation plans (DP × PP × TP) for a cluster
// and prints the best ones: the quantified version of the paper's §2.2
// argument for wide 2D tensor parallelism.
func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	modelName := fs.String("model", "megatron", "LLM: gpt3 or megatron")
	chips := fs.Int("chips", 2048, "total cluster size")
	batch := fs.Int("batch", 512, "global batch (sequences)")
	max1D := fs.Int("max1dtp", 8, "1D TP degree cap (0 = uncapped)")
	top := fs.Int("top", 10, "plans to print")
	hbmGiB := fs.Float64("hbm", 32, "per-chip HBM capacity in GiB")
	fs.Parse(args)

	cfg := modelByName(*modelName)
	chip := hw.TPUv4()
	evs := cluster.Search(cfg, *chips, *batch, chip, *max1D, cluster.Options{
		HBMCapacity: *hbmGiB * float64(1<<30),
	})
	if len(evs) == 0 {
		fmt.Printf("no feasible plan for %s on %d chips with %.0f GiB HBM\n", cfg.Name, *chips, *hbmGiB)
		return
	}
	fmt.Printf("%s on %d chips, batch %d, HBM %.0f GiB, 1D TP capped at %d-way\n\n",
		cfg.Name, *chips, *batch, *hbmGiB, *max1D)
	fmt.Printf("%-34s  %-10s  %-9s  %-9s  %-9s  %s\n",
		"plan", "step", "bubble", "DP sync", "mem/chip", "util")
	for i, ev := range evs {
		if i >= *top {
			break
		}
		fmt.Printf("%-34s  %-10s  %-9s  %-9s  %-9s  %.1f%%\n",
			ev.Plan,
			fmt.Sprintf("%.0fms", ev.StepTime*1e3),
			fmt.Sprintf("%.0fms", ev.BubbleTime*1e3),
			fmt.Sprintf("%.1fms", ev.DPSyncTime*1e3),
			fmt.Sprintf("%.1fGiB", ev.Memory.Total()/(1<<30)),
			100*ev.Utilization(cfg, *batch, chip))
	}
}
