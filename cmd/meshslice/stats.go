package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"meshslice/internal/autotune"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/mesh"
	"meshslice/internal/netsim"
	"meshslice/internal/obs"
	"meshslice/internal/obs/recorder"
	"meshslice/internal/sched"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

// cmdStats simulates one GeMM under every builtin algorithm with full
// telemetry enabled and emits the deterministic JSON metrics snapshot:
// makespans, per-chip busy and bubble times, per-link traffic, op-duration
// histograms, critical-path attribution, kernel statistics, and the
// autotuner's slice-count search trajectory. Two runs with the same inputs
// produce byte-identical output.
func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	profile := fs.String("profile", "", "chip calibration JSON (default: built-in TPUv4)")
	m := fs.Int("m", 1<<16, "result rows M")
	n := fs.Int("n", 12288, "result cols N")
	k := fs.Int("k", 12288, "inner dimension K")
	rows := fs.Int("rows", 4, "mesh rows")
	cols := fs.Int("cols", 4, "mesh cols")
	s := fs.Int("s", 0, "MeshSlice slice count (0 = autotune it, publishing the search metrics)")
	out := fs.String("o", "", "write the snapshot to this file (default: stdout)")
	fs.Parse(args)

	chip := hw.TPUv4()
	if *profile != "" {
		var err error
		chip, err = hw.LoadProfileFile(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	tor := topology.NewTorus(*rows, *cols)
	prob := gemm.Problem{M: *m, N: *n, K: *k, Dataflow: gemm.OS}
	reg := obs.NewRegistry()

	slices := *s
	if slices == 0 {
		choice, ok := autotune.InstrumentedTunePass(prob, tor, chip, 0, reg)
		if !ok {
			fmt.Fprintf(os.Stderr, "no feasible slice count for M=%d on %v\n", *m, tor)
			os.Exit(1)
		}
		slices = choice.S
	}

	progs := []*sched.Program{
		sched.MeshSliceProgram(prob, tor, chip, slices),
		sched.CollectiveProgram(prob, tor, chip),
		sched.WangProgram(prob, tor, chip, slices),
		sched.SUMMAProgram(prob, tor, chip, 0),
		sched.OneDTPProgram(*m, *n, *k, tor.Size(), chip),
		sched.FSDPProgram(*m, *n, *k, tor.Size(), chip),
	}
	if tor.IsSquare() {
		progs = append(progs, sched.CannonProgram(prob, tor, chip))
	}
	for _, p := range progs {
		netsim.Simulate(p, chip, netsim.Options{CriticalPath: true, Metrics: reg})
	}
	publishFunctionalOverlap(reg, tor)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := reg.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// publishFunctionalOverlap runs one small GeMM on the functional mesh
// runtime twice — serial and pipelined MeshSlice — with the flight recorder
// attached, and publishes the recorder's structural comm/compute overlap
// tallies as gauges. The serial row pins the metric's zero (no async ops),
// the pipelined row shows the overlap the double-buffered schedule actually
// achieves on this mesh shape. The probe is sized from the torus so it
// validates on any mesh, and the recorder's merge-at-Wait design keeps the
// values deterministic, so the snapshot stays byte-identical across runs.
func publishFunctionalOverlap(reg *obs.Registry, tor topology.Torus) {
	q := tor.Rows * tor.Cols
	probe := gemm.Problem{M: 8 * q, N: 8 * q, K: 16 * q, Dataflow: gemm.OS}
	aR, aC, bR, bC := probe.OperandShapes()
	rng := rand.New(rand.NewSource(1))
	a := tensor.Random(aR, aC, rng)
	b := tensor.Random(bR, bC, rng)
	as := tensor.Partition(a, tor.Rows, tor.Cols)
	bs := tensor.Partition(b, tor.Rows, tor.Cols)

	for _, mode := range []string{"serial", "pipelined"} {
		cfg := gemm.MeshSliceConfig{S: 4, Block: 1, Pipelined: mode == "pipelined"}
		if err := cfg.Validate(probe, tor); err != nil {
			fmt.Fprintf(os.Stderr, "overlap probe infeasible on %v: %v\n", tor, err)
			os.Exit(1)
		}
		mh := mesh.New(tor)
		rec := recorder.New(tor.Size(), 0)
		mh.SetRecorder(rec)
		gemm.Run(mh, gemm.MeshSlice(gemm.OS, cfg), as, bs)
		ov := rec.Overlap()
		l := obs.L("mode", mode)
		reg.Gauge("functional_overlap_fraction", l).Set(ov.Fraction)
		reg.Gauge("functional_overlap_async_ops", l).Set(float64(ov.AsyncOps))
		reg.Gauge("functional_overlap_overlapped", l).Set(float64(ov.Overlapped))
	}
}
