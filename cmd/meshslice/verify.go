package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"meshslice/internal/gemm"
	"meshslice/internal/mesh"
	"meshslice/internal/obs/recorder"
	"meshslice/internal/topology"
)

// cmdVerify runs every distributed GeMM algorithm functionally — real data
// over the goroutine mesh — on a user-chosen problem and mesh, and checks
// each against the single-node reference multiplication.
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	m := fs.Int("m", 64, "result rows M")
	n := fs.Int("n", 64, "result cols N")
	k := fs.Int("k", 64, "inner dimension K")
	rows := fs.Int("rows", 4, "mesh rows")
	cols := fs.Int("cols", 4, "mesh cols")
	s := fs.Int("s", 2, "MeshSlice slice count")
	block := fs.Int("block", 2, "MeshSlice block size")
	dataflow := fs.String("dataflow", "os", "dataflow: os, ls, or rs")
	seed := fs.Int64("seed", 1, "input seed")
	record := fs.String("record", "", "write the sweep's canonical flight-recorder JSON here")
	fs.Parse(args)

	var df gemm.Dataflow
	switch strings.ToLower(*dataflow) {
	case "os":
		df = gemm.OS
	case "ls":
		df = gemm.LS
	case "rs":
		df = gemm.RS
	default:
		fmt.Fprintf(os.Stderr, "unknown dataflow %q\n", *dataflow)
		os.Exit(2)
	}
	p := gemm.Problem{M: *m, N: *n, K: *k, Dataflow: df}
	tor := topology.NewTorus(*rows, *cols)
	opts := gemm.AlgOptions{S: *s, Block: *block}
	mh := mesh.New(tor)
	var rec *recorder.Recorder
	if *record != "" {
		rec = recorder.New(tor.Size(), 0)
		mh.SetRecorder(rec)
	}

	fmt.Printf("verifying M=%d N=%d K=%d (%v) on %v, S=%d B=%d\n\n", *m, *n, *k, df, tor, *s, *block)
	fmt.Printf("%-11s  %-8s  %s\n", "algorithm", "status", "max |Δ| vs reference")
	failed := false
	for _, r := range gemm.VerifyAlgorithmsOn(mh, p, opts, *seed, 1e-9) {
		switch {
		case r.Skipped != "":
			fmt.Printf("%-11s  %-8s  (%s)\n", r.Algorithm, "skipped", r.Skipped)
		case r.OK:
			fmt.Printf("%-11s  %-8s  %.2e\n", r.Algorithm, "ok", r.MaxDiff)
		default:
			failed = true
			fmt.Printf("%-11s  %-8s  %.2e\n", r.Algorithm, "FAILED", r.MaxDiff)
		}
	}
	if rec != nil {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.Snapshot().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nflight-recorder JSON → %s\n", *record)
	}
	if failed {
		os.Exit(1)
	}
}
