package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"meshslice/internal/gemm"
	"meshslice/internal/topology"
)

// cmdVerify runs every distributed GeMM algorithm functionally — real data
// over the goroutine mesh — on a user-chosen problem and mesh, and checks
// each against the single-node reference multiplication.
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	m := fs.Int("m", 64, "result rows M")
	n := fs.Int("n", 64, "result cols N")
	k := fs.Int("k", 64, "inner dimension K")
	rows := fs.Int("rows", 4, "mesh rows")
	cols := fs.Int("cols", 4, "mesh cols")
	s := fs.Int("s", 2, "MeshSlice slice count")
	block := fs.Int("block", 2, "MeshSlice block size")
	dataflow := fs.String("dataflow", "os", "dataflow: os, ls, or rs")
	seed := fs.Int64("seed", 1, "input seed")
	fs.Parse(args)

	var df gemm.Dataflow
	switch strings.ToLower(*dataflow) {
	case "os":
		df = gemm.OS
	case "ls":
		df = gemm.LS
	case "rs":
		df = gemm.RS
	default:
		fmt.Fprintf(os.Stderr, "unknown dataflow %q\n", *dataflow)
		os.Exit(2)
	}
	p := gemm.Problem{M: *m, N: *n, K: *k, Dataflow: df}
	tor := topology.NewTorus(*rows, *cols)
	opts := gemm.AlgOptions{S: *s, Block: *block}

	fmt.Printf("verifying M=%d N=%d K=%d (%v) on %v, S=%d B=%d\n\n", *m, *n, *k, df, tor, *s, *block)
	fmt.Printf("%-11s  %-8s  %s\n", "algorithm", "status", "max |Δ| vs reference")
	failed := false
	for _, r := range gemm.VerifyAlgorithms(p, tor, opts, *seed, 1e-9) {
		switch {
		case r.Skipped != "":
			fmt.Printf("%-11s  %-8s  (%s)\n", r.Algorithm, "skipped", r.Skipped)
		case r.OK:
			fmt.Printf("%-11s  %-8s  %.2e\n", r.Algorithm, "ok", r.MaxDiff)
		default:
			failed = true
			fmt.Printf("%-11s  %-8s  %.2e\n", r.Algorithm, "FAILED", r.MaxDiff)
		}
	}
	if failed {
		os.Exit(1)
	}
}
