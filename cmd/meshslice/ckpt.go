package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"meshslice/internal/ckpt"
	"meshslice/internal/mesh"
	"meshslice/internal/minitrain"
)

// cmdCkpt demonstrates the elastic checkpoint/restore subsystem end to end:
// it trains the minitrain MLP on a mesh with deterministic sharded
// snapshots every -every steps, optionally fail-stops a chip mid-run
// (-fail-at/-fail-chip), reshards the last complete snapshot onto a new
// mesh shape (-reshard RxC), resumes there, and verifies the final weights
// are bit-identical to an uninterrupted serial reference. -o persists the
// snapshots as ckpt-NNNNNN/{manifest.json,chip-NNNN.bin} under a directory.
func cmdCkpt(args []string) {
	fs := flag.NewFlagSet("ckpt", flag.ExitOnError)
	rows := fs.Int("rows", 2, "mesh rows")
	cols := fs.Int("cols", 2, "mesh cols")
	steps := fs.Int("steps", 10, "training steps")
	every := fs.Int("every", 2, "snapshot every k steps")
	seed := fs.Int64("seed", 1, "training seed")
	failAt := fs.Int("fail-at", -1, "fail-stop a chip during this step (-1: no failure)")
	failChip := fs.Int("fail-chip", 0, "chip to fail-stop")
	reshard := fs.String("reshard", "", "resume mesh shape RxC (default: the original shape)")
	out := fs.String("o", "", "persist snapshots under this directory")
	fs.Parse(args)

	c := minitrain.ElasticConfig{Batch: 16, In: 16, Hidden: 32, Out: 8, LR: 0.05, Momentum: 0.9}
	from := ckpt.Layout{Rows: *rows, Cols: *cols, SliceRows: 1, SliceCols: 1, Block: 2}
	if err := c.Validate(from); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	to := from
	if *reshard != "" {
		var tr, tc int
		if n, err := fmt.Sscanf(*reshard, "%dx%d", &tr, &tc); n != 2 || err != nil {
			fmt.Fprintf(os.Stderr, "bad -reshard %q: want RxC\n", *reshard)
			os.Exit(2)
		}
		to = ckpt.Layout{Rows: tr, Cols: tc, SliceRows: 1, SliceCols: 1, Block: from.Block}
		if err := c.Validate(to); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var store ckpt.Store = ckpt.NewMemStore()
	if *out != "" {
		fstore, err := ckpt.NewFileStore(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store = fstore
	}

	opts := minitrain.ElasticOpts{Every: *every}
	if *failAt >= 0 {
		opts.Faults = c.ElasticFailFaults(from.Torus(), *failChip, 0, *failAt)
	}
	fmt.Printf("training %dx%d, %d steps, snapshot every %d, seed %d\n",
		from.Rows, from.Cols, *steps, *every, *seed)
	res, err := minitrain.TrainElastic(c, from, *steps, *seed, opts)
	for _, s := range res.Snapshots {
		if serr := ckpt.Save(store, s); serr != nil {
			fmt.Fprintln(os.Stderr, serr)
			os.Exit(1)
		}
		fmt.Printf("  snapshot epoch %d (step %d): %d records, %d bytes each\n",
			s.Manifest.Epoch, s.Manifest.Step, len(s.Records), len(s.Records[0]))
	}

	if err != nil {
		var cf *mesh.ChipFailedError
		if !errors.As(err, &cf) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chip failure: %v\n", cf)
		latest, lerr := ckpt.LatestEpoch(store)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "no complete snapshot to resume from: %v\n", lerr)
			os.Exit(1)
		}
		snap, lerr := ckpt.Load(store, latest)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, lerr)
			os.Exit(1)
		}
		fmt.Printf("resuming from epoch %d (step %d), resharding %dx%d -> %dx%d\n",
			latest, snap.Manifest.Step, from.Rows, from.Cols, to.Rows, to.Cols)
		resharded, rerr := ckpt.Reshard(snap, to)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		res, err = minitrain.TrainElastic(c, to, *steps, *seed, minitrain.ElasticOpts{Every: *every, Resume: resharded})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, s := range res.Snapshots {
			if serr := ckpt.Save(store, s); serr != nil {
				fmt.Fprintln(os.Stderr, serr)
				os.Exit(1)
			}
			fmt.Printf("  snapshot epoch %d (step %d): %d records, %d bytes each\n",
				s.Manifest.Epoch, s.Manifest.Step, len(s.Records), len(s.Records[0]))
		}
	}

	ref := minitrain.TrainElasticSerial(c, *steps, *seed)
	bitIdentical := res.W1.BitEqual(ref.W1) && res.W2.BitEqual(ref.W2)
	fmt.Printf("final loss: %.6f\n", res.Losses[len(res.Losses)-1])
	fmt.Printf("bit-identical to uninterrupted serial run: %v\n", bitIdentical)
	if !bitIdentical {
		os.Exit(1)
	}
}
