package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/netsim"
	"meshslice/internal/sched"
	"meshslice/internal/topology"
)

// cmdTimeline renders the paper's Fig. 4 timelines as ASCII charts: one
// three-lane trace (compute / inter-row / inter-col) per algorithm for one
// GeMM on one mesh shape, so the overlap behaviour of each algorithm is
// visible directly.
func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	m := fs.Int("m", 1<<16, "result rows M")
	n := fs.Int("n", 12288, "result cols N")
	k := fs.Int("k", 12288, "inner dimension K")
	rows := fs.Int("rows", 8, "mesh rows")
	cols := fs.Int("cols", 8, "mesh cols")
	s := fs.Int("s", 8, "MeshSlice slice count / baseline unroll")
	width := fs.Int("width", 100, "chart width in characters")
	chrome := fs.String("chrome", "", "also write whole-cluster Chrome trace-event JSON files to this directory")
	fs.Parse(args)

	tor := topology.NewTorus(*rows, *cols)
	prob := gemm.Problem{M: *m, N: *n, K: *k, Dataflow: gemm.OS}
	chip := hw.TPUv4()

	progs := []*sched.Program{
		sched.MeshSliceProgram(prob, tor, chip, *s),
		sched.CollectiveProgram(prob, tor, chip),
		sched.WangProgram(prob, tor, chip, *s),
		sched.SUMMAProgram(prob, tor, chip, 0),
	}
	if tor.IsSquare() {
		progs = append(progs, sched.CannonProgram(prob, tor, chip))
	}
	fmt.Printf("GeMM M=%d N=%d K=%d on %v (chip-0 traces)\n\n", *m, *n, *k, tor)
	for _, p := range progs {
		// The ASCII chart shows chip 0; the Chrome export covers the
		// whole cluster, one Perfetto process per chip.
		r := netsim.Simulate(p, chip, netsim.Options{CollectTrace: true, TraceAllChips: *chrome != ""})
		fmt.Printf("--- %s  (makespan %.3fms, exposed comm %.3fms)\n",
			p.Label, r.Makespan*1e3, r.ExposedComm*1e3)
		os.Stdout.WriteString(r.Trace.Timeline(*width))
		fmt.Println()
		if *chrome != "" {
			if err := writeChrome(*chrome, p.Label, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// writeChrome stores one algorithm's whole-cluster trace as
// Perfetto-loadable JSON.
func writeChrome(dir, label string, r netsim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(c rune) rune {
		switch c {
		case ' ', '/', '=':
			return '_'
		}
		return c
	}, label)
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("(chrome trace: %s)\n", f.Name())
	return netsim.WriteClusterChromeTrace(f, r.Traces, label)
}
