package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"meshslice/internal/autotune"
	"meshslice/internal/fault"
	"meshslice/internal/hw"
	"meshslice/internal/netsim"
	"meshslice/internal/sched"
	"meshslice/internal/topology"
)

// cmdFaults quantifies fault resilience: it builds a deterministic fault
// plan, simulates the stale healthy-fabric tuning choice under it, reruns
// the autotuner fault-aware (autotune.TuneUnderFaults), and reports both
// simulated FC block times side by side.
func cmdFaults(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	modelName := fs.String("model", "gpt3", "LLM: gpt3 or megatron")
	chips := fs.Int("chips", 64, "cluster size")
	tokens := fs.Int("tokens", 0, "tokens per step (default: weak-scaling batch = chips/2)")
	scenario := fs.String("scenario", "col-degrade", "fault scenario: col-degrade, stragglers, or seeded")
	seed := fs.Int64("seed", 7, "scenario seed (seeded scenario only)")
	factor := fs.Float64("factor", 6, "degrade/slowdown factor")
	reroute := fs.Bool("reroute", false, "re-route rings around single dead links instead of halting")
	out := fs.String("o", "", "also write the comparison as JSON to this path")
	chrome := fs.String("chrome", "", "also write a faulty-cluster Chrome trace (stale plan, first pass) to this path")
	fs.Parse(args)

	cfg := modelByName(*modelName)
	tk := *tokens
	if tk == 0 {
		tk = cfg.WeakScalingTokens(*chips)
	}
	plan, err := faultScenario(*scenario, *chips, *seed, *factor)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chip := hw.TPUv4()
	opts := autotune.Options{OptimizeDataflow: true}

	stale, err := autotune.Tune(cfg, tk, *chips, chip, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	staleTime, staleFailed := autotune.SimulateChoice(stale, chip, plan, *reroute)
	aware, err := autotune.TuneUnderFaults(cfg, tk, *chips, chip, plan, *reroute, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("model: %s   chips: %d   tokens: %d   scenario: %s\n", cfg.Name, *chips, tk, *scenario)
	fmt.Println("fault plan:")
	for _, line := range strings.Split(strings.TrimRight(plan.Canonical(), "\n"), "\n") {
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("\n%-22s  %-10s  %s\n", "plan", "shape", "simulated FC block time")
	fmt.Printf("%-22s  %-10v  %s\n", "stale (healthy-tuned)", stale.Shape, simTimeString(staleTime, staleFailed))
	fmt.Printf("%-22s  %-10v  %s\n", "fault-aware retuned", aware.Shape, simTimeString(aware.SimTime, aware.Failed))
	if staleFailed == nil && aware.Failed == nil {
		fmt.Printf("\nretuning gain: %+.1f%%\n", 100*(staleTime/aware.SimTime-1))
	}

	if *out != "" {
		if err := writeFaultsJSON(*out, cfg.Name, *scenario, *chips, tk, *reroute, plan,
			stale.Shape, staleTime, staleFailed, aware.Shape, aware.SimTime, aware.Failed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(json report: %s)\n", *out)
	}
	if *chrome != "" {
		if err := writeFaultsChrome(*chrome, stale, chip, plan, *reroute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(chrome trace: %s)\n", *chrome)
	}
}

// faultScenario builds the named deterministic fault plan.
func faultScenario(name string, chips int, seed int64, factor float64) (*fault.Plan, error) {
	switch name {
	case "col-degrade":
		p := &fault.Plan{}
		for c := 0; c < chips; c++ {
			p.Degrades = append(p.Degrades, fault.LinkDegrade{
				Link: fault.Link{Chip: c, Dir: topology.InterCol}, Factor: factor,
			})
		}
		return p, nil
	case "stragglers":
		return &fault.Plan{Stragglers: []fault.Straggler{
			{Chip: 0, Slowdown: factor},
			{Chip: 1, Slowdown: factor},
		}}, nil
	case "seeded":
		return fault.Generate(seed, chips, fault.ScenarioOptions{
			Degrades: 3, Stragglers: 2, MaxFactor: factor, Horizon: 0.01,
		}), nil
	case "chip-fail":
		// Fail the top-numbered chips down to the largest square strictly
		// smaller than the cluster: no full-size mesh survives, but a square
		// mesh of the survivors does — the scenario that makes fault-aware
		// serving retunes strictly improve goodput.
		side := 1
		for (side+1)*(side+1) < chips {
			side++
		}
		p := &fault.Plan{}
		for c := side * side; c < chips; c++ {
			p.ChipFails = append(p.ChipFails, fault.ChipFail{Chip: c, At: 0})
		}
		return p, nil
	}
	return nil, fmt.Errorf("unknown scenario %q (want col-degrade, stragglers, seeded, or chip-fail)", name)
}

func simTimeString(t float64, failed *netsim.Failure) string {
	if failed != nil {
		return "halted: " + failed.Error()
	}
	return fmt.Sprintf("%.3fms", t*1e3)
}

// faultsReport is the deterministic JSON shape of the comparison: two runs
// with identical flags produce byte-identical files.
type faultsReport struct {
	Model    string
	Scenario string
	Chips    int
	Tokens   int
	Reroute  bool
	Plan     []string
	Stale    faultsPlanReport
	Aware    faultsPlanReport
	GainPct  *float64 `json:",omitempty"`
}

type faultsPlanReport struct {
	Shape   string
	SimTime float64 `json:",omitempty"`
	Failed  string  `json:",omitempty"`
}

func writeFaultsJSON(path, modelName, scenario string, chips, tokens int, reroute bool, plan *fault.Plan,
	staleShape topology.Torus, staleTime float64, staleFailed *netsim.Failure,
	awareShape topology.Torus, awareTime float64, awareFailed *netsim.Failure) error {
	rep := faultsReport{
		Model:    modelName,
		Scenario: scenario,
		Chips:    chips,
		Tokens:   tokens,
		Reroute:  reroute,
		Plan:     strings.Split(strings.TrimRight(plan.Canonical(), "\n"), "\n"),
		Stale:    faultsPlanReport{Shape: staleShape.String()},
		Aware:    faultsPlanReport{Shape: awareShape.String()},
	}
	if staleFailed != nil {
		rep.Stale.Failed = staleFailed.Error()
	} else {
		rep.Stale.SimTime = staleTime
	}
	if awareFailed != nil {
		rep.Aware.Failed = awareFailed.Error()
	} else {
		rep.Aware.SimTime = awareTime
	}
	if staleFailed == nil && awareFailed == nil {
		gain := 100 * (staleTime/awareTime - 1)
		rep.GainPct = &gain
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeFaultsChrome simulates the stale choice's first pass under the fault
// plan with all-chip tracing and writes a Perfetto-loadable trace that
// includes the fault intervals as their own process.
func writeFaultsChrome(path string, stale autotune.Choice, chip hw.Chip, plan *fault.Plan, reroute bool) error {
	if len(stale.Layers) == 0 {
		return fmt.Errorf("faults: stale choice has no layers to trace")
	}
	pass := stale.Layers[0].Passes[0]
	prog := sched.MeshSliceProgram(pass.Problem, stale.Shape, chip, pass.S)
	r := netsim.Simulate(prog, chip, netsim.Options{
		Faults:        plan,
		FaultReroute:  reroute,
		CollectTrace:  true,
		TraceAllChips: true,
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	label := fmt.Sprintf("%s under faults", prog.Label)
	return netsim.WriteFaultyClusterChromeTrace(f, r.Traces, r.FaultSpans, label)
}
