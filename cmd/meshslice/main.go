// Command meshslice runs individual simulations and the LLM autotuner from
// the command line.
//
// Subcommands:
//
//	meshslice tune  -model gpt3 -chips 256 [-tokens N] [-no-dataflow-opt]
//	    Run the LLM autotuner and print the chosen mesh shape, per-layer
//	    dataflows and slice counts, and estimated block time.
//
//	meshslice sim   -model gpt3 -chips 256 -algo meshslice [-rows R -cols C]
//	    Simulate one transformer block's FC GeMMs under an algorithm and
//	    print the makespan, utilisation, and communication breakdown.
//
//	meshslice gemm  -m M -n N -k K -chips P -algo all [-dataflow os]
//	    Simulate a single distributed GeMM under one or all algorithms.
//
//	meshslice stats -m M -n N -k K -rows R -cols C [-profile chip.json] [-o out.json]
//	    Simulate one GeMM under every builtin algorithm with telemetry on
//	    and emit the deterministic JSON metrics snapshot (makespans,
//	    per-chip busy/bubble time, critical-path attribution, histograms).
//
//	meshslice timeline -m M -n N -k K -rows R -cols C [-chrome DIR]
//	    Render per-algorithm ASCII timelines; -chrome also exports
//	    whole-cluster Perfetto/Chrome traces (one process per chip).
//
//	meshslice faults -model gpt3 -chips 64 -scenario col-degrade [-o out.json] [-chrome trace.json]
//	    Build a deterministic fault plan (degraded links, stragglers, or a
//	    seeded mix), simulate the stale healthy-fabric tuning choice under
//	    it, rerun the autotuner fault-aware, and compare the two.
//
//	meshslice record -m M -n N -k K -rows R -cols C -algo meshslice [-o events.json] [-chrome trace.json]
//	    Run one distributed GeMM functionally with the flight recorder
//	    attached and export the Lamport-clocked causal event log: canonical
//	    JSON (byte-identical run-to-run) and/or a Perfetto trace with
//	    per-chip collective spans and message-flow arrows. -drop/-fail
//	    inject faults and print the forensics dump of the dying run.
//
//	meshslice ckpt -rows 2 -cols 4 -steps 10 -every 2 [-fail-at 5 -fail-chip 5] [-reshard 2x2] [-o DIR]
//	    Train the minitrain MLP with deterministic sharded snapshots,
//	    optionally fail-stop a chip mid-run, reshard the last complete
//	    snapshot onto a new mesh shape, resume there, and verify the final
//	    weights are bit-identical to an uninterrupted run.
//
//	meshslice serve -model gpt3 -chips 16 [-rows R -cols C] [-rate 10] [-slo 1.0] [-seed 42] [-faults chip-fail] [-o out.json]
//	    Simulate deterministic LLM inference serving: a seeded Poisson
//	    workload through the continuous-batching scheduler, with the mesh
//	    shape and batching policy fixed by flags or chosen by the SLO-driven
//	    serving autotuner; -faults additionally compares the stale
//	    healthy-fabric deployment against a fault-aware retune.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"meshslice/internal/autotune"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/mesh"
	"meshslice/internal/model"
	"meshslice/internal/obs/recorder"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
	"meshslice/internal/train"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "tune":
		cmdTune(os.Args[2:])
	case "sim":
		cmdSim(os.Args[2:])
	case "gemm":
		cmdGeMM(os.Args[2:])
	case "timeline":
		cmdTimeline(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	case "calibrate":
		cmdCalibrate(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "faults":
		cmdFaults(os.Args[2:])
	case "record":
		cmdRecord(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "ckpt":
		cmdCkpt(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: meshslice {tune|sim|gemm|timeline|stats|plan|calibrate|verify|faults|record|ckpt|serve} [flags]  (run a subcommand with -h for its flags)")
	os.Exit(2)
}

// modelByName resolves a built-in model alias or, failing that, loads the
// argument as a JSON model-config path.
func modelByName(name string) model.Config {
	if c, ok := model.ByName(name); ok {
		return c
	}
	if c, err := model.LoadFile(name); err == nil {
		return c
	}
	known := []string{}
	for _, c := range model.Builtins() {
		known = append(known, c.Name)
	}
	fmt.Fprintf(os.Stderr, "unknown model %q (built-ins: %s; or pass a JSON config path)\n",
		name, strings.Join(known, ", "))
	os.Exit(2)
	panic("unreachable")
}

func algoByName(name string) (train.Algo, bool) {
	for _, a := range train.Algos {
		if strings.EqualFold(a.String(), name) {
			return a, true
		}
	}
	return 0, false
}

func cmdTune(args []string) {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	modelName := fs.String("model", "gpt3", "LLM: gpt3 or megatron")
	chips := fs.Int("chips", 256, "cluster size")
	tokens := fs.Int("tokens", 0, "tokens per step (default: weak-scaling batch = chips/2)")
	noOpt := fs.Bool("no-dataflow-opt", false, "skip phase 1 (use Y-stn everywhere)")
	fs.Parse(args)

	cfg := modelByName(*modelName)
	tk := *tokens
	if tk == 0 {
		tk = cfg.WeakScalingTokens(*chips)
	}
	choice, err := autotune.Tune(cfg, tk, *chips, hw.TPUv4(), autotune.Options{OptimizeDataflow: !*noOpt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("model: %s   chips: %d   tokens: %d\n", cfg.Name, *chips, tk)
	fmt.Printf("chosen mesh shape: %v\n", choice.Shape)
	fmt.Printf("estimated FC time per block: %.3fms\n\n", choice.BlockTime*1e3)
	fmt.Printf("%-8s  %-6s  %-22s  %s\n", "layer", "stn", "pass", "S / est time")
	for _, lc := range choice.Layers {
		for pass, pc := range lc.Passes {
			fmt.Printf("%-8s  %-6v  %-22s  S=%-3d %.3fms\n",
				lc.Plan.Layer.Name, lc.Plan.Stationary,
				fmt.Sprintf("%v %v", model.Pass(pass), pc.Problem.Dataflow),
				pc.S, pc.Estimate.Total()*1e3)
		}
	}
}

func cmdSim(args []string) {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	modelName := fs.String("model", "gpt3", "LLM: gpt3 or megatron")
	chips := fs.Int("chips", 256, "cluster size")
	algoName := fs.String("algo", "meshslice", "algorithm (or 'all')")
	rows := fs.Int("rows", 0, "fix the mesh rows (0 = search)")
	cols := fs.Int("cols", 0, "fix the mesh cols (0 = search)")
	noOverlap := fs.Bool("no-overlap", false, "forbid comm/compute overlap (real-TPU mode)")
	stepLevel := fs.Bool("steplevel", false, "simulate collectives one ring step at a time")
	fabric := fs.Float64("fabric", 0, "logical-mesh fabric contention factor (0/1 = physical mesh)")
	bidir := fs.Bool("bidir", false, "drive both ICI directions for AG/RdS collectives")
	tiled := fs.Bool("tiled", false, "use the tiled chip compute model")
	fs.Parse(args)

	cfg := modelByName(*modelName)
	tk := cfg.WeakScalingTokens(*chips)
	opts := train.Options{OptimizeDataflow: true}
	opts.Sim.NoOverlap = *noOverlap
	opts.Sim.StepLevel = *stepLevel
	opts.Sim.FabricContention = *fabric
	opts.Sim.BidirectionalRings = *bidir
	opts.Sim.TiledCompute = *tiled
	if *rows > 0 && *cols > 0 {
		opts.Shapes = []topology.Torus{topology.NewTorus(*rows, *cols)}
	}
	chip := hw.TPUv4()

	algos := train.Algos
	if *algoName != "all" {
		a, ok := algoByName(*algoName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algoName)
			os.Exit(2)
		}
		algos = []train.Algo{a}
	}
	fmt.Printf("model: %s   chips: %d   tokens: %d\n\n", cfg.Name, *chips, tk)
	fmt.Printf("%-11s  %-10s  %-10s  %-8s  %s\n", "algorithm", "shape", "block time", "util", "comm launch/transfer/sync (ms)")
	for _, algo := range algos {
		r, err := train.EvaluateFC(cfg, tk, *chips, chip, algo, opts)
		if err != nil {
			fmt.Printf("%-11s  %v\n", algo, err)
			continue
		}
		fmt.Printf("%-11s  %-10v  %-10s  %-8s  %.3f / %.3f / %.3f\n",
			algo, r.Shape, fmt.Sprintf("%.3fms", r.Time*1e3),
			fmt.Sprintf("%.1f%%", 100*r.Utilization(chip)),
			r.Comm.Launch*1e3, r.Comm.Transfer*1e3, r.Comm.Sync*1e3)
	}
}

func cmdGeMM(args []string) {
	fs := flag.NewFlagSet("gemm", flag.ExitOnError)
	m := fs.Int("m", 1<<17, "result rows M")
	n := fs.Int("n", 12288, "result cols N")
	k := fs.Int("k", 12288, "inner dimension K")
	chips := fs.Int("chips", 256, "cluster size")
	algoName := fs.String("algo", "all", "algorithm (or 'all')")
	dataflow := fs.String("dataflow", "os", "dataflow: os, ls, or rs")
	record := fs.String("record", "", "also replay one algorithm functionally (near-square mesh, use modest M/N/K) and write its flight-recorder JSON here; requires a specific -algo")
	fs.Parse(args)

	var df gemm.Dataflow
	switch strings.ToLower(*dataflow) {
	case "os":
		df = gemm.OS
	case "ls":
		df = gemm.LS
	case "rs":
		df = gemm.RS
	default:
		fmt.Fprintf(os.Stderr, "unknown dataflow %q\n", *dataflow)
		os.Exit(2)
	}
	prob := gemm.Problem{M: *m, N: *n, K: *k, Dataflow: df}
	chip := hw.TPUv4()

	algos := train.TwoDAlgos
	if *algoName != "all" {
		a, ok := algoByName(*algoName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algoName)
			os.Exit(2)
		}
		algos = []train.Algo{a}
	}
	fmt.Printf("GeMM M=%d N=%d K=%d (%v) on %d chips\n\n", *m, *n, *k, df, *chips)
	fmt.Printf("%-11s  %-10s  %-10s  %s\n", "algorithm", "shape", "time", "util")
	for _, algo := range algos {
		r, err := train.EvaluateGeMM(prob, *chips, chip, algo, train.Options{})
		if err != nil {
			fmt.Printf("%-11s  %v\n", algo, err)
			continue
		}
		fmt.Printf("%-11s  %-10v  %-10s  %.1f%%\n",
			algo, r.Shape, fmt.Sprintf("%.3fms", r.Time*1e3), 100*r.Utilization(chip))
	}
	if *record != "" {
		if *algoName == "all" {
			fmt.Fprintln(os.Stderr, "-record needs a specific -algo (the functional replay runs one algorithm)")
			os.Exit(2)
		}
		recordGeMM(prob, *chips, *algoName, *record)
	}
}

// recordGeMM replays the GeMM functionally on a near-square factorisation
// of the chip count with the flight recorder attached, and writes the
// canonical event-log JSON.
func recordGeMM(p gemm.Problem, chips int, algoName, out string) {
	rows := 1
	for d := 1; d*d <= chips; d++ {
		if chips%d == 0 {
			rows = d
		}
	}
	tor := topology.NewTorus(rows, chips/rows)
	alg, ok := gemm.AlgorithmByName(algoName)
	if !ok {
		fmt.Fprintf(os.Stderr, "no functional implementation of %q to record\n", algoName)
		os.Exit(2)
	}
	if !alg.Supports(p.Dataflow) {
		fmt.Fprintf(os.Stderr, "%s does not implement the %v dataflow\n", alg.Name, p.Dataflow)
		os.Exit(2)
	}
	opts := gemm.AlgOptions{}
	if err := alg.Validate(p, tor, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mh := mesh.New(tor)
	rec := recorder.New(tor.Size(), 0)
	mh.SetRecorder(rec)
	rng := rand.New(rand.NewSource(1))
	aR, aC, bR, bC := p.OperandShapes()
	a := tensor.Random(aR, aC, rng)
	b := tensor.Random(bR, bC, rng)
	gemm.MultiplyOn(mh, alg.Build(p.Dataflow, opts), a, b)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rec.Snapshot().WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("\nfunctional replay on %v recorded → %s\n", tor, out)
}
