package main

import (
	"testing"

	"meshslice/internal/obs"
	"meshslice/internal/topology"
)

// TestStatsExposesFunctionalOverlap pins the obs surface of the overlap
// engine: `meshslice stats` publishes the flight recorder's structural
// comm/compute overlap as gauges, with the serial run scoring exactly zero
// async ops and the pipelined run scoring a strictly positive fraction.
func TestStatsExposesFunctionalOverlap(t *testing.T) {
	reg := obs.NewRegistry()
	publishFunctionalOverlap(reg, topology.NewTorus(2, 2))

	got := map[string]map[string]float64{}
	for _, g := range reg.Snapshot().Gauges {
		if got[g.Name] == nil {
			got[g.Name] = map[string]float64{}
		}
		got[g.Name][g.Labels["mode"]] = g.Value
	}

	for _, name := range []string{"functional_overlap_fraction", "functional_overlap_async_ops", "functional_overlap_overlapped"} {
		modes, ok := got[name]
		if !ok {
			t.Fatalf("gauge %s missing from stats snapshot", name)
		}
		if _, ok := modes["serial"]; !ok {
			t.Fatalf("gauge %s missing mode=serial point", name)
		}
		if _, ok := modes["pipelined"]; !ok {
			t.Fatalf("gauge %s missing mode=pipelined point", name)
		}
	}
	if v := got["functional_overlap_async_ops"]["serial"]; v != 0 {
		t.Errorf("serial run reported %v async ops, want 0", v)
	}
	if v := got["functional_overlap_fraction"]["pipelined"]; v <= 0 {
		t.Errorf("pipelined overlap fraction = %v, want > 0", v)
	}
	if v := got["functional_overlap_async_ops"]["pipelined"]; v <= 0 {
		t.Errorf("pipelined run reported %v async ops, want > 0", v)
	}
}

// TestStatsOverlapDeterministic pins byte-stability of the published
// values: two independent probes on the same torus must agree exactly.
func TestStatsOverlapDeterministic(t *testing.T) {
	snap := func() []obs.GaugePoint {
		reg := obs.NewRegistry()
		publishFunctionalOverlap(reg, topology.NewTorus(2, 2))
		return reg.Snapshot().Gauges
	}
	a, b := snap(), snap()
	if len(a) != len(b) {
		t.Fatalf("gauge count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value || a[i].Labels["mode"] != b[i].Labels["mode"] {
			t.Errorf("gauge %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
