package main

import (
	"flag"
	"fmt"
	"os"

	"meshslice/internal/autotune"
	"meshslice/internal/fault"
	"meshslice/internal/hw"
	"meshslice/internal/serve"
	"meshslice/internal/topology"
)

// cmdServe simulates deterministic LLM inference serving: a seeded Poisson
// workload runs through the continuous-batching scheduler, and the mesh
// shape plus batching policy either come from the flags (-rows/-cols) or
// from the SLO-driven serving autotuner. With -faults the command compares
// the stale healthy-fabric deployment against a fault-aware retune and
// prints the recovered goodput.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelName := fs.String("model", "gpt3", "LLM: gpt3, megatron, llama3-70b, or a JSON config path")
	chips := fs.Int("chips", 16, "cluster size (the shape search space when -rows/-cols are unset)")
	rows := fs.Int("rows", 0, "fix the mesh rows (0 = autotune the shape and policy)")
	cols := fs.Int("cols", 0, "fix the mesh cols (0 = autotune the shape and policy)")
	rate := fs.Float64("rate", 10, "mean request arrival rate (requests/s)")
	requests := fs.Int("requests", 64, "number of requests in the generated trace")
	seed := fs.Int64("seed", 42, "workload seed (and fault-scenario seed)")
	sloTTFT := fs.Float64("slo", 1.0, "time-to-first-token SLO in seconds")
	sloTok := fs.Float64("slo-token", 0.05, "per-output-token SLO in seconds")
	hbmGB := fs.Float64("hbm-gb", 64, "per-chip HBM capacity in GiB")
	maxBatch := fs.Int("max-batch", 0, "fixed-shape decode batch cap (0 = default)")
	chunk := fs.Int("chunk", 0, "fixed-shape prefill chunk tokens (0 = default)")
	slices := fs.Int("slices", 0, "fixed-shape MeshSlice slice count (0 = default)")
	scenario := fs.String("faults", "", "fault scenario: col-degrade, stragglers, seeded, or chip-fail (empty = healthy fabric)")
	factor := fs.Float64("factor", 6, "degrade/slowdown factor for the fault scenario")
	out := fs.String("o", "", "write the canonical JSON serving report to this path")
	fs.Parse(args)

	cfg := modelByName(*modelName)
	chip := hw.TPUv4()
	slo := serve.SLO{TTFT: *sloTTFT, PerToken: *sloTok}
	hbm := *hbmGB * (1 << 30)
	wl := serve.WorkloadSpec{Seed: *seed, Rate: *rate, Requests: *requests}.Generate()

	var plan *fault.Plan
	if *scenario != "" {
		p, err := faultScenario(*scenario, *chips, *seed, *factor)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		plan = p
	}

	fmt.Printf("model: %s   chips: %d   rate: %g req/s   requests: %d   seed: %d\n",
		cfg.Name, *chips, *rate, *requests, *seed)
	fmt.Printf("SLO: TTFT %.3fs, per-token %.3fs\n\n", slo.TTFT, slo.PerToken)

	var rep *serve.Report
	switch {
	case *rows > 0 && *cols > 0:
		// Fixed deployment: run exactly the requested shape and policy.
		mesh := topology.Torus{Rows: *rows, Cols: *cols}
		cluster := *chips
		if cluster < mesh.Size() {
			cluster = mesh.Size()
		}
		r, err := serve.Run(serve.Config{
			Model: cfg, Chip: chip, Mesh: mesh,
			Policy:       serve.Policy{MaxBatch: *maxBatch, ChunkTokens: *chunk, SliceCount: *slices},
			SLO:          slo,
			HBMBytes:     hbm,
			ClusterChips: cluster,
			Faults:       plan,
		}, wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep = r
		printServeReport("fixed deployment", rep)

	case plan == nil:
		// Healthy fabric: tune shape × policy for goodput under the SLO.
		choice, err := autotune.TuneServing(cfg, *chips, chip, slo, wl, autotune.ServingOptions{HBMBytes: hbm})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep = choice.Report
		printServeReport("tuned deployment", rep)

	default:
		// Degraded fabric: tune healthy, measure the stale choice under the
		// plan, retune fault-aware, and report the recovered goodput.
		res, err := autotune.TuneServingUnderFaults(cfg, *chips, chip, slo, wl, plan, autotune.ServingOptions{HBMBytes: hbm})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("fault scenario: %s (factor %g)\n\n", *scenario, *factor)
		printServeReport("stale (healthy-tuned) under faults", res.StaleUnderFaults)
		fmt.Println()
		printServeReport("fault-aware retuned", res.Retuned.Report)
		fmt.Printf("\nretuning gain: %+.3f req/s goodput (stale %.3f -> retuned %.3f)\n",
			res.Gain(), res.StaleUnderFaults.Goodput, res.Retuned.Report.Goodput)
		rep = res.Retuned.Report
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\n(json report: %s)\n", *out)
	}
}

// printServeReport renders one serving report as a short human summary; the
// canonical machine form is Report.WriteJSON.
func printServeReport(label string, r *serve.Report) {
	fmt.Printf("%s: %s on %dx%d  (S=%d, max-batch %d, chunk %d)\n",
		label, r.Model, r.Rows, r.Cols, r.SliceCount, r.MaxBatch, r.ChunkTokens)
	if !r.Feasible {
		fmt.Printf("  infeasible: %s\n", r.Reason)
		return
	}
	fmt.Printf("  completed %d/%d  (rejected %d, preemptions %d, steps %d)\n",
		r.Completed, r.Requests, r.Rejected, r.Preemptions, r.Steps)
	fmt.Printf("  TTFT      p50 %.3fs  p95 %.3fs  p99 %.3fs\n", r.TTFT.P50, r.TTFT.P95, r.TTFT.P99)
	fmt.Printf("  per-token p50 %.4fs  p95 %.4fs  p99 %.4fs\n", r.PerToken.P50, r.PerToken.P95, r.PerToken.P99)
	fmt.Printf("  e2e       p50 %.3fs  p99 %.3fs   makespan %.3fs\n", r.E2E.P50, r.E2E.P99, r.MakespanS)
	fmt.Printf("  goodput: %.3f req/s meeting SLO  (%d of %d completions)\n", r.Goodput, r.SLOMet, r.Completed)
}
