// Command meshlint is the project's static-analysis suite: it loads every
// package in the module with go/parser + go/types (standard library only,
// no external analysis framework) and enforces the determinism and
// concurrency invariants DESIGN.md documents in prose.
//
// Usage:
//
//	go run ./cmd/meshlint ./...
//
// Each finding prints as "file:line: [rule] message" — or, with -json, as
// a canonical JSON report sorted by file, line, rule, and message so two
// runs over the same tree are byte-identical — and any finding makes the
// command exit 1 (load or usage errors exit 2). Rules are suppressed
// either inline ("// lint:invariant reason", "// lint:float-exact reason",
// "// lint:allow rule reason") or through an allowlist file (-allowlist,
// default .meshlint-allow) with one "rule path[:line]" entry per line, so
// new rules can be adopted incrementally. "// lint:hotpath reason" above a
// function declaration marks it as a hot-path root for hotpath-alloc.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"meshslice/internal/lint"
)

func main() {
	var (
		dir       = flag.String("dir", ".", "module root to analyze")
		allowFile = flag.String("allowlist", ".meshlint-allow", "allowlist file (\"rule path[:line]\" per line; missing file = empty)")
		listRules = flag.Bool("rules", false, "print the rule suite and exit")
		panics    = flag.Bool("panics", false, "print the panic-site inventory and exit")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON report on stdout (deterministic: sorted by file, line, rule, message)")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listRules {
		for _, a := range analyzers {
			fmt.Printf("%-21s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fatal(err)
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	if *panics {
		inventory := lint.PanicInventory(m)
		reachable := 0
		for _, s := range inventory {
			mark := " "
			if s.Reachable {
				mark = "R"
				reachable++
			}
			if s.Allowed {
				mark += " invariant"
			}
			fmt.Printf("%s:%d: %s %s\n", rel(root, s.Pos.Filename), s.Pos.Line, mark, s.Fn)
		}
		fmt.Printf("%d panic sites, %d reachable from the exported API\n", len(inventory), reachable)
		return
	}

	allow, err := lint.LoadAllowlist(filepath.Join(root, *allowFile))
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(m, analyzers, allow)
	diags = filterPatterns(root, diags, flag.Args())
	if *jsonOut {
		if err := writeJSON(os.Stdout, root, analyzers, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d: [%s] %s\n", rel(root, d.Pos.Filename), d.Pos.Line, d.Rule, d.Msg)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "meshlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonReport is the -json output schema (documented in README.md): the
// rule suite that ran and every surviving finding, already in lint.Run's
// canonical (file, line, rule, message) order, so two runs over the same
// tree produce byte-identical reports — CI diffs them to prove the
// analyzers themselves are deterministic.
type jsonReport struct {
	Rules    []string      `json:"rules"`
	Findings []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	File string `json:"file"` // module-root-relative, slash-separated
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func writeJSON(w *os.File, root string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	report := jsonReport{Rules: []string{}, Findings: []jsonFinding{}}
	for _, a := range analyzers {
		report.Rules = append(report.Rules, a.Name)
	}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File: rel(root, d.Pos.Filename),
			Line: d.Pos.Line,
			Rule: d.Rule,
			Msg:  d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// filterPatterns narrows diagnostics to the requested package patterns.
// "./..." (and no patterns at all) means the whole module; "./internal/mesh"
// or "internal/mesh/..." select by directory prefix.
func filterPatterns(root string, diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" || p == "." {
			return diags
		}
		prefixes = append(prefixes, p)
	}
	if len(prefixes) == 0 {
		return diags
	}
	var kept []lint.Diagnostic
	for _, d := range diags {
		r := rel(root, d.Pos.Filename)
		for _, p := range prefixes {
			if r == p || strings.HasPrefix(r, p+"/") {
				kept = append(kept, d)
				break
			}
		}
	}
	return kept
}

func rel(root, filename string) string {
	if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filename
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshlint:", err)
	os.Exit(2)
}
