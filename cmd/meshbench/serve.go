package main

import (
	"fmt"
	"testing"

	"meshslice/internal/fault"
	"meshslice/internal/hw"
	"meshslice/internal/model"
	"meshslice/internal/serve"
	"meshslice/internal/topology"
)

// serveBenches is the inference-serving suite: the continuous-batching
// scheduler simulating a fixed seeded trace, swept over arrival rate and
// mesh shape, each on a healthy fabric and under an all-chip column-link
// degrade. It tracks the cost of one full serving simulation — the unit the
// serving autotuner runs once per (shape × policy) candidate — so grid
// sweeps stay affordable as the scheduler grows.
func serveBenches() []bench {
	chip := hw.TPUv4()
	cfg := model.GPT3()
	shapes := []topology.Torus{{Rows: 4, Cols: 4}, {Rows: 8, Cols: 8}}
	rates := []float64{5, 20, 50}

	colDegrade := func(chips int) *fault.Plan {
		p := &fault.Plan{}
		for c := 0; c < chips; c++ {
			p.Degrades = append(p.Degrades, fault.LinkDegrade{
				Link: fault.Link{Chip: c, Dir: topology.InterCol}, Factor: 6,
			})
		}
		return p
	}

	var benches []bench
	for _, shape := range shapes {
		for _, rate := range rates {
			for _, faulty := range []bool{false, true} {
				shape, rate, faulty := shape, rate, faulty
				name := fmt.Sprintf("Serve%dx%dRate%g", shape.Rows, shape.Cols, rate)
				var plan *fault.Plan
				if faulty {
					name += "ColDegrade"
					plan = colDegrade(shape.Size())
				}
				benches = append(benches, bench{name, func(b *testing.B) {
					wl := serve.WorkloadSpec{Seed: 42, Rate: rate, Requests: 32}.Generate()
					sc := serve.Config{
						Model: cfg, Chip: chip, Mesh: shape,
						SLO:      serve.SLO{TTFT: 1.0, PerToken: 0.05},
						HBMBytes: 64 * 1 << 30,
						Faults:   plan,
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := serve.Run(sc, wl); err != nil {
							b.Fatal(err)
						}
					}
				}})
			}
		}
	}
	return benches
}
