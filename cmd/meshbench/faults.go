package main

import (
	"testing"

	"meshslice/internal/fault"
	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/netsim"
	"meshslice/internal/sched"
	"meshslice/internal/topology"
)

// faultBenches are the degraded-fabric scenarios (-faults-out): the same
// flagship simulation as the main suite under representative fault plans,
// so CI tracks the simulator's fault-hook overhead — including the
// fault-free case, which must stay indistinguishable from the baseline —
// alongside the healthy numbers.
func faultBenches(chip hw.Chip, prob gemm.Problem, tor topology.Torus) []bench {
	colDegrade := &fault.Plan{}
	for c := 0; c < tor.Size(); c++ {
		colDegrade.Degrades = append(colDegrade.Degrades, fault.LinkDegrade{
			Link: fault.Link{Chip: c, Dir: topology.InterCol}, Factor: 6,
		})
	}
	seeded := fault.Generate(7, tor.Size(), fault.ScenarioOptions{
		Degrades: 4, Stragglers: 2, MaxFactor: 6, Horizon: 0.01,
	})
	deadLink := &fault.Plan{LinkFails: []fault.LinkFail{
		{Link: fault.Link{Chip: 0, Dir: topology.InterCol}, At: 0},
	}}

	return []bench{
		{"SimulateMeshSlice8x8EmptyFaultPlan", func(b *testing.B) {
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{Faults: &fault.Plan{}})
			}
		}},
		{"SimulateMeshSlice8x8ColDegrade", func(b *testing.B) {
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{Faults: colDegrade})
			}
		}},
		{"SimulateMeshSlice8x8SeededFaults", func(b *testing.B) {
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{Faults: seeded})
			}
		}},
		{"SimulateMeshSlice8x8Reroute", func(b *testing.B) {
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{Faults: deadLink, FaultReroute: true})
			}
		}},
		{"SimulateSUMMAStepLevel8x8Degraded", func(b *testing.B) {
			prog := sched.SUMMAProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{StepLevel: true, Faults: colDegrade})
			}
		}},
		{"FaultPlanLinkFactorLookup", func(b *testing.B) {
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += seeded.LinkFactor(fault.Link{Chip: 3, Dir: topology.InterRow}, 0.005)
			}
			_ = sink
		}},
	}
}
