package main

import (
	"math/rand"
	"testing"

	"meshslice/internal/ckpt"
	"meshslice/internal/tensor"
)

// ckptBenches measures the checkpoint subsystem's host-side costs at 16-
// and 64-chip shapes: canonical record encoding plus manifest construction
// (the snapshot write path), full-snapshot checksum verification (the load
// path), and resharding between the two shapes (the elastic resume path).

// ckptState builds per-chip named-tensor blocks for a deterministic
// 256×512 / 512×128 weight-and-velocity set under the layout.
func ckptState(l ckpt.Layout) [][]ckpt.NamedTensor {
	rng := rand.New(rand.NewSource(17))
	perChip := make([][]ckpt.NamedTensor, l.Chips())
	for _, name := range []string{"w1", "v1", "w2", "v2"} {
		var g *tensor.Matrix
		switch name {
		case "w1", "v1":
			g = tensor.Random(256, 512, rng)
		default:
			g = tensor.Random(512, 128, rng)
		}
		for rank, blk := range tensor.Partition(g, l.Rows, l.Cols) {
			perChip[rank] = append(perChip[rank], ckpt.NamedTensor{Name: name, Rows: g.Rows, Cols: g.Cols, Block: blk})
		}
	}
	return perChip
}

func ckptSnapshot(b *testing.B, l ckpt.Layout) *ckpt.Snapshot {
	perChip := ckptState(l)
	records := make([][]byte, l.Chips())
	for rank, tensors := range perChip {
		rec, err := ckpt.EncodeRecord(l, rank, 100, 17, tensors)
		if err != nil {
			b.Fatal(err)
		}
		records[rank] = rec
	}
	s, err := ckpt.BuildSnapshot(l, 1, minitrainFlow, records)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const minitrainFlow = "elastic"

func ckptBenches() []bench {
	lay16 := ckpt.Layout{Rows: 4, Cols: 4, SliceRows: 1, SliceCols: 1, Block: 2}
	lay64 := ckpt.Layout{Rows: 8, Cols: 8, SliceRows: 1, SliceCols: 1, Block: 2}
	var out []bench
	for _, entry := range []struct {
		name string
		lay  ckpt.Layout
	}{{"4x4", lay16}, {"8x8", lay64}} {
		lay := entry.lay
		out = append(out,
			bench{"CkptSnapshotEncode" + entry.name, func(b *testing.B) {
				perChip := ckptState(lay)
				records := make([][]byte, lay.Chips())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for rank, tensors := range perChip {
						rec, err := ckpt.EncodeRecord(lay, rank, 100, 17, tensors)
						if err != nil {
							b.Fatal(err)
						}
						records[rank] = rec
					}
					if _, err := ckpt.BuildSnapshot(lay, 1, minitrainFlow, records); err != nil {
						b.Fatal(err)
					}
				}
			}},
			bench{"CkptSnapshotVerify" + entry.name, func(b *testing.B) {
				s := ckptSnapshot(b, lay)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Verify(); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}
	out = append(out,
		bench{"CkptReshard4x4to8x8", func(b *testing.B) {
			s := ckptSnapshot(b, lay16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ckpt.Reshard(s, lay64); err != nil {
					b.Fatal(err)
				}
			}
		}},
		bench{"CkptReshard8x8to4x4", func(b *testing.B) {
			s := ckptSnapshot(b, lay64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ckpt.Reshard(s, lay16); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)
	return out
}
