package main

import (
	"math/rand"
	"testing"

	"meshslice/internal/collective"
	"meshslice/internal/gemm"
	"meshslice/internal/mesh"
	"meshslice/internal/obs/recorder"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

// The recorder suite (-record-out) measures what the flight recorder costs
// the functional mesh runtime: each entry runs once with no recorder (the
// nil-check fast path) and once with one attached, on a ring collective and
// on a full MeshSlice GeMM. The recorded variants must stay allocation-free
// per steady-state op — the ring buffer is pre-sized — so the pairs should
// differ in ns/op only.

// benchRecordedAllGather measures the 8-chip ring all-gather through the
// arena-backed Into variant, with or without a flight recorder attached.
func benchRecordedAllGather(record bool) func(b *testing.B) {
	return func(b *testing.B) {
		const p, dim = 8, 64
		m := mesh.New(topology.NewTorus(1, p))
		if record {
			m.SetRecorder(recorder.New(p, 0))
		}
		rng := rand.New(rand.NewSource(42))
		locals := make([]*tensor.Matrix, p)
		dsts := make([]*tensor.Matrix, p)
		for r := range locals {
			locals[r] = tensor.Random(dim, dim, rng)
			dsts[r] = tensor.New(dim*p, dim)
		}
		b.ResetTimer()
		m.Run(func(c *mesh.Chip) {
			cm := c.RowComm()
			for i := 0; i < b.N; i++ {
				collective.AllGatherRowsInto(cm, locals[c.Rank], dsts[c.Rank])
			}
		})
	}
}

// benchRecordedGeMM measures one full functional MeshSlice GeMM on a 4×4
// mesh, with or without a flight recorder attached. The recorder is reset
// between iterations so every run records from an empty ring, like a fresh
// attach.
func benchRecordedGeMM(record bool) func(b *testing.B) {
	return func(b *testing.B) {
		p := gemm.Problem{M: 64, N: 64, K: 64, Dataflow: gemm.OS}
		tor := topology.NewTorus(4, 4)
		m := mesh.New(tor)
		var rec *recorder.Recorder
		if record {
			rec = recorder.New(tor.Size(), 0)
			m.SetRecorder(rec)
		}
		rng := rand.New(rand.NewSource(42))
		aR, aC, bR, bC := p.OperandShapes()
		a := tensor.Random(aR, aC, rng)
		bm := tensor.Random(bR, bC, rng)
		fn := gemm.MeshSlice(gemm.OS, gemm.MeshSliceConfig{S: 2, Block: 2})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec != nil {
				rec.Reset()
			}
			gemm.MultiplyOn(m, fn, a, bm)
		}
	}
}

func recorderBenches() []bench {
	return []bench{
		{"AllGatherRows8Into", benchRecordedAllGather(false)},
		{"AllGatherRows8IntoRecorded", benchRecordedAllGather(true)},
		{"MeshSliceGeMM4x4", benchRecordedGeMM(false)},
		{"MeshSliceGeMM4x4Recorded", benchRecordedGeMM(true)},
	}
}
