package main

import (
	"math"
	"math/rand"
	"testing"

	"meshslice/internal/autotune"
	"meshslice/internal/collective"
	"meshslice/internal/costmodel"
	"meshslice/internal/hw"
	"meshslice/internal/mesh"
	"meshslice/internal/model"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

// The kernels suite (-kernels-out) tracks the three hot paths the simulator
// spends its time in: the local GeMM kernels, the ring collectives, and the
// autotuner's analytical search. Each optimised entry is paired with a
// frozen "Naive" replica of the pre-optimisation code path, so the JSON
// records the speedup ratio itself rather than requiring a checkout of the
// old commit to reproduce the baseline.

// naiveMatMulAdd is the original serial ikj kernel: no row-strip fan-out,
// no cache tiling. Kept verbatim as the MatMulAdd baseline.
func naiveMatMulAdd(c, a, b *tensor.Matrix) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 { // lint:float-exact sparsity fast path skips exact zeros only
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += aik * bv
			}
		}
	}
}

// naiveMatMulAddNT is the original serial dot-product kernel for C += A·Bᵀ.
func naiveMatMulAddNT(c, a, b *tensor.Matrix) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k, av := range arow {
				sum += av * brow[k]
			}
			crow[j] += sum
		}
	}
}

// naiveMatMulAddTN is the original serial kij kernel for C += Aᵀ·B.
func naiveMatMulAddTN(c, a, b *tensor.Matrix) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 { // lint:float-exact sparsity fast path skips exact zeros only
				continue
			}
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// naiveTune replicates the pre-optimisation analytical search: O(g) trial
// division for the slice counts and a full costmodel.MeshSlice estimate per
// candidate S, with no memoisation and no worker pool. It reuses the public
// phase-1 planner so the two searches walk the identical candidate space.
func naiveTune(cfg model.Config, tokens, chips int, chip hw.Chip) float64 {
	plans := autotune.PlanModel(cfg, tokens, true)
	best := math.Inf(1)
	for _, shape := range topology.MeshShapes2D(chips) {
		total := 0.0
		ok := true
		for _, plan := range plans {
			for _, p := range plan.Passes {
				passBest := math.Inf(1)
				found := false
				for _, s := range autotune.ValidSliceCounts(p, shape, chip) {
					if t := costmodel.MeshSlice(p, shape, chip, s).Total(); !found || t < passBest {
						passBest = t
						found = true
					}
				}
				if !found {
					ok = false
					break
				}
				total += passBest
			}
			if !ok {
				break
			}
		}
		if ok && total < best {
			best = total
		}
	}
	return best
}

// benchGeMM pairs one kernel variant with fresh deterministic 512³
// operands. The output matrix is zeroed, not reallocated, between
// iterations so the measurement is pure kernel time.
func benchGeMM(dim int, fn func(c, a, b *tensor.Matrix)) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(42))
		a := tensor.Random(dim, dim, rng)
		bm := tensor.Random(dim, dim, rng)
		c := tensor.New(dim, dim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Zero()
			fn(c, a, bm)
		}
	}
}

// benchAllGatherRows measures an 8-chip ring all-gather, either through
// the allocating API or the arena-backed Into variant.
func benchAllGatherRows(into bool) func(b *testing.B) {
	return func(b *testing.B) {
		const p, dim = 8, 64
		m := mesh.New(topology.NewTorus(1, p))
		rng := rand.New(rand.NewSource(42))
		locals := make([]*tensor.Matrix, p)
		dsts := make([]*tensor.Matrix, p)
		for r := range locals {
			locals[r] = tensor.Random(dim, dim, rng)
			dsts[r] = tensor.New(dim*p, dim)
		}
		b.ResetTimer()
		m.Run(func(c *mesh.Chip) {
			cm := c.RowComm()
			for i := 0; i < b.N; i++ {
				if into {
					collective.AllGatherRowsInto(cm, locals[c.Rank], dsts[c.Rank])
				} else {
					dsts[c.Rank] = collective.AllGatherRows(cm, locals[c.Rank])
				}
			}
		})
	}
}

// benchTune runs the full two-phase search for gpt3 on 64 chips with the
// given worker count (1 = serial, 0 = one worker per core).
func benchTune(cfg model.Config, chip hw.Chip, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := autotune.Tune(cfg, 1<<15, 64, chip, autotune.Options{
				OptimizeDataflow: true, Workers: workers,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func kernelBenches(chip hw.Chip) []bench {
	const dim = 512
	cfg, ok := model.ByName("gpt3")
	if !ok {
		panic("meshbench: gpt3 builtin missing")
	}
	return []bench{
		{"MatMulAdd512Naive", benchGeMM(dim, naiveMatMulAdd)},
		{"MatMulAdd512", benchGeMM(dim, tensor.MatMulAdd)},
		{"MatMulAddNT512Naive", benchGeMM(dim, naiveMatMulAddNT)},
		{"MatMulAddNT512", benchGeMM(dim, tensor.MatMulAddNT)},
		{"MatMulAddTN512Naive", benchGeMM(dim, naiveMatMulAddTN)},
		{"MatMulAddTN512", benchGeMM(dim, tensor.MatMulAddTN)},
		{"AllGatherRows8", benchAllGatherRows(false)},
		{"AllGatherRows8Into", benchAllGatherRows(true)},
		{"TuneNaive64", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if math.IsInf(naiveTune(cfg, 1<<15, 64, chip), 1) {
					b.Fatal("naive tune found no configuration")
				}
			}
		}},
		{"TuneSerial64", benchTune(cfg, chip, 1)},
		{"TuneParallel64", benchTune(cfg, chip, 0)},
	}
}
