package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"meshslice/internal/gemm"
	"meshslice/internal/mesh"
	"meshslice/internal/obs/recorder"
	"meshslice/internal/tensor"
	"meshslice/internal/topology"
)

// The overlap suite measures what the functional overlap engine actually
// buys: serial vs pipelined MeshSlice and Wang on real multi-core
// wall-clock, at 2×2 and 4×4 meshes and GOMAXPROCS 2 and 8, alongside the
// achieved overlap fraction from the flight recorder's async-issue/wait
// attribution. The pipelined rows carry speedup = serial ns/op ÷ pipelined
// ns/op for the same configuration.

// overlapResult is one configuration's summary row.
type overlapResult struct {
	Name            string  `json:"name"`
	Algorithm       string  `json:"algorithm"`
	Mesh            string  `json:"mesh"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	Pipelined       bool    `json:"pipelined"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	OverlapFraction float64 `json:"overlap_fraction"`
	// Speedup is serial ns/op over this row's ns/op; 1.0 on serial rows.
	Speedup float64 `json:"speedup"`
}

// overlapProblem is a skinny contraction (small M×N output, deep K) sliced
// finely, so one slice's partial collective and one slice's MatMulAdd are
// comparable — the regime where the serial schedule spends real wall-clock
// parked in ring receives and the pipelined schedule hides them. A
// compute-dominated shape would show parity for both modes and measure
// nothing.
var overlapProblem = gemm.Problem{M: 64, N: 64, K: 8192, Dataflow: gemm.OS}

func overlapOpts() gemm.AlgOptions { return gemm.AlgOptions{S: 32, Block: 8} }

// runOverlapSuite writes the serial-vs-pipelined comparison to path.
func runOverlapSuite(path string) error {
	type config struct {
		alg   string
		tor   topology.Torus
		procs int
	}
	var configs []config
	for _, alg := range []string{"MeshSlice", "Wang"} {
		for _, tor := range []topology.Torus{topology.NewTorus(2, 2), topology.NewTorus(4, 4)} {
			for _, procs := range []int{2, 8} {
				configs = append(configs, config{alg, tor, procs})
			}
		}
	}

	var results []overlapResult
	for _, cfg := range configs {
		alg, ok := gemm.AlgorithmByName(cfg.alg)
		if !ok {
			return fmt.Errorf("meshbench: algorithm %s missing from registry", cfg.alg)
		}
		var serialNs float64
		for _, pipelined := range []bool{false, true} {
			opts := overlapOpts()
			opts.Pipelined = pipelined
			if err := alg.Validate(overlapProblem, cfg.tor, opts); err != nil {
				return fmt.Errorf("meshbench: %s on %v: %v", cfg.alg, cfg.tor, err)
			}
			fn := alg.Build(overlapProblem.Dataflow, opts)

			r, frac := benchChipFunc(cfg.tor, cfg.procs, fn)
			mode := "Serial"
			if pipelined {
				mode = "Pipelined"
			}
			row := overlapResult{
				Name:            fmt.Sprintf("%s%s%dx%d/procs=%d", cfg.alg, mode, cfg.tor.Rows, cfg.tor.Cols, cfg.procs),
				Algorithm:       cfg.alg,
				Mesh:            fmt.Sprintf("%dx%d", cfg.tor.Rows, cfg.tor.Cols),
				Gomaxprocs:      cfg.procs,
				Pipelined:       pipelined,
				Iterations:      r.N,
				NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp:     r.AllocsPerOp(),
				OverlapFraction: frac,
				Speedup:         1,
			}
			if pipelined {
				row.Speedup = serialNs / row.NsPerOp
			} else {
				serialNs = row.NsPerOp
			}
			results = append(results, row)
			fmt.Fprintf(os.Stderr, "%-34s %8d iters  %14.0f ns/op  overlap=%.2f  speedup=%.2fx\n",
				row.Name, row.Iterations, row.NsPerOp, row.OverlapFraction, row.Speedup)
		}
	}

	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// benchChipFunc times one full mesh Run of fn over pre-partitioned shards
// (partition/assemble excluded: both modes share that cost, and the suite
// is about the SPMD schedule), then replays one recorded run for the
// overlap fraction.
func benchChipFunc(tor topology.Torus, procs int, fn gemm.ChipFunc) (testing.BenchmarkResult, float64) {
	p := overlapProblem
	aR, aC, bR, bC := p.OperandShapes()
	rng := rand.New(rand.NewSource(42))
	a := tensor.Random(aR, aC, rng)
	b := tensor.Random(bR, bC, rng)
	as := tensor.Partition(a, tor.Rows, tor.Cols)
	bs := tensor.Partition(b, tor.Rows, tor.Cols)

	prev := runtime.GOMAXPROCS(procs)
	m := mesh.New(tor)
	r := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			gemm.Run(m, fn, as, bs)
		}
	})

	rec := recorder.New(tor.Size(), 0)
	m.SetRecorder(rec)
	gemm.Run(m, fn, as, bs)
	frac := rec.Overlap().Fraction
	m.SetRecorder(nil)
	runtime.GOMAXPROCS(prev)
	return r, frac
}
