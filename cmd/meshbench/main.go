// Command meshbench runs the repository's performance benchmarks outside
// `go test` and writes a machine-readable summary, so CI can track the
// simulator's own speed (events/sec through the des kernel, full-program
// simulation latency, metrics-registry overhead) across commits.
//
//	meshbench [-o BENCH_meshslice.json] [-benchtime 1x]
//
// The harness reuses testing.Benchmark, so each entry reports the standard
// ns/op, B/op and allocs/op. Wall-clock use is fine here: this command
// measures the simulator, it is not part of the simulation (meshlint's
// no-wallclock rule covers only the sim packages).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"meshslice/internal/gemm"
	"meshslice/internal/hw"
	"meshslice/internal/netsim"
	"meshslice/internal/obs"
	"meshslice/internal/sched"
	"meshslice/internal/topology"
)

// benchResult is one benchmark's summary row.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// bench is one named benchmark.
type bench struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	out := flag.String("o", "BENCH_meshslice.json", "output JSON path (- for stdout)")
	faultsOut := flag.String("faults-out", "", "also run the degraded-fabric scenarios and write their summary to this JSON path")
	kernelsOut := flag.String("kernels-out", "", "also run the hot-path suite (GeMM kernels, ring collectives, autotuner search, each paired with its pre-optimisation baseline) and write its summary to this JSON path")
	recordOut := flag.String("record-out", "", "also run the flight-recorder overhead suite (one collective and one functional GeMM, each recorder-off vs recorder-on) and write its summary to this JSON path")
	ckptOut := flag.String("ckpt-out", "", "also run the checkpoint suite (snapshot encode, verify, and reshard at 16- and 64-chip shapes) and write its summary to this JSON path")
	overlapOut := flag.String("overlap-out", "", "also run the comm/compute overlap suite (serial vs pipelined MeshSlice and Wang on the functional runtime at 2x2 and 4x4 meshes, GOMAXPROCS 2 and 8) and write its summary to this JSON path")
	serveOut := flag.String("serve-out", "", "also run the inference-serving suite (continuous-batching scheduler over a seeded trace, arrival-rate sweep at 4x4 and 8x8, healthy and col-degraded fabric) and write its summary to this JSON path")
	flag.Parse()

	chip := hw.TPUv4()
	prob := gemm.Problem{M: 1 << 16, N: 12288, K: 12288, Dataflow: gemm.OS}
	tor := topology.NewTorus(8, 8)

	// Fixed order: the output file diffs cleanly between runs.
	benches := []bench{
		{"SimulateMeshSlice8x8", func(b *testing.B) {
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{})
			}
		}},
		{"SimulateMeshSlice8x8Instrumented", func(b *testing.B) {
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{
					CriticalPath: true, TraceAllChips: true, Metrics: obs.NewRegistry(),
				})
			}
		}},
		{"SimulateCollective8x8", func(b *testing.B) {
			prog := sched.CollectiveProgram(prob, tor, chip)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{})
			}
		}},
		{"SimulateSUMMAStepLevel8x8", func(b *testing.B) {
			prog := sched.SUMMAProgram(prob, tor, chip, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				netsim.Simulate(prog, chip, netsim.Options{StepLevel: true})
			}
		}},
		{"RegistryCounterAdd", func(b *testing.B) {
			reg := obs.NewRegistry()
			c := reg.Counter("bench_counter", obs.L("k", "v"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		}},
		{"RegistrySnapshotJSON", func(b *testing.B) {
			reg := obs.NewRegistry()
			prog := sched.MeshSliceProgram(prob, tor, chip, 8)
			netsim.Simulate(prog, chip, netsim.Options{CriticalPath: true, Metrics: reg})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := reg.WriteJSON(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	if err := runSuite(benches, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *faultsOut != "" {
		if err := runSuite(faultBenches(chip, prob, tor), *faultsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *kernelsOut != "" {
		if err := runSuite(kernelBenches(chip), *kernelsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *recordOut != "" {
		if err := runSuite(recorderBenches(), *recordOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *ckptOut != "" {
		if err := runSuite(ckptBenches(), *ckptOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *overlapOut != "" {
		if err := runOverlapSuite(*overlapOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *serveOut != "" {
		if err := runSuite(serveBenches(), *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runSuite executes a benchmark list in order and writes the JSON summary
// to path ("-" for stdout).
func runSuite(benches []bench, path string) error {
	results := make([]benchResult, 0, len(benches))
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		results = append(results, benchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-36s %10d iters  %14.0f ns/op  %10d B/op  %8d allocs/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
