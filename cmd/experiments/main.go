// Command experiments regenerates the paper's tables and figures from the
// simulator, cost models, and autotuner.
//
// Usage:
//
//	experiments [-run id[,id...]] [-quick] [-list]
//
// Without -run, every experiment runs in presentation order. -quick scales
// the sweeps down to small clusters (seconds instead of minutes). -list
// prints the known experiment IDs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"meshslice/internal/experiments"
	"meshslice/internal/hw"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "small clusters for a fast smoke run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	hwFile := flag.String("hw", "", "hardware calibration profile (JSON); default TPUv4")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	mdFile := flag.String("md", "", "also append every table as markdown to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	chip := hw.TPUv4()
	if *hwFile != "" {
		var err error
		chip, err = hw.LoadProfileFile(*hwFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var md *os.File
	if *mdFile != "" {
		var err error
		md, err = os.Create(*mdFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer md.Close()
	}
	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tables, err := experiments.Run(id, chip, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, t := range tables {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", t.ID, i)
				if err := writeCSV(*csvDir, name, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			if md != nil {
				if err := t.WriteMarkdown(md); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV stores one table under dir, creating it if needed.
func writeCSV(dir, name string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
