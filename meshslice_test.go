package meshslice_test

import (
	"math/rand"
	"testing"

	meshslice "meshslice"
	"meshslice/internal/tensor"
)

func TestFacadeMultiply(t *testing.T) {
	p := meshslice.Problem{M: 32, N: 32, K: 32, Dataflow: meshslice.OS}
	tor := meshslice.NewTorus(2, 2)
	rng := rand.New(rand.NewSource(1))
	a := tensor.Random(32, 32, rng)
	b := tensor.Random(32, 32, rng)
	got, err := meshslice.Multiply(p, tor, meshslice.MeshSliceConfig{S: 2, Block: 2}, a, b)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	want := tensor.MatMul(a, b)
	if !got.Equal(want, 1e-9) {
		t.Errorf("facade Multiply wrong: max diff %g", got.MaxAbsDiff(want))
	}
	if _, err := meshslice.Multiply(p, tor, meshslice.MeshSliceConfig{S: 7, Block: 3}, a, b); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestFacadeSimulateAndEstimate(t *testing.T) {
	p := meshslice.Problem{M: 1 << 14, N: 8192, K: 8192, Dataflow: meshslice.OS}
	tor := meshslice.NewTorus(4, 4)
	chip := meshslice.TPUv4()
	r := meshslice.Simulate(p, tor, chip, 4, meshslice.SimOptions{})
	if r.Makespan <= 0 {
		t.Errorf("Simulate makespan %v", r.Makespan)
	}
	e := meshslice.EstimateCost(p, tor, chip, 4)
	if e.Total() <= 0 {
		t.Errorf("EstimateCost total %v", e.Total())
	}
	// The cost model and simulator must agree within a loose band — they
	// model the same machine (the simulator adds contention and skew).
	ratio := r.Makespan / e.Total()
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("simulation %v vs estimate %v diverge (ratio %.2f)", r.Makespan, e.Total(), ratio)
	}
}

func TestFacadeTuneAndTrainStep(t *testing.T) {
	cfg := meshslice.GPT3()
	chip := meshslice.TPUv4()
	const chips = 16
	tokens := cfg.WeakScalingTokens(chips)
	choice, err := meshslice.Tune(cfg, tokens, chips, chip)
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if choice.Shape.Size() != chips {
		t.Errorf("tuned shape %v", choice.Shape)
	}
	step, err := meshslice.TrainStep(cfg, tokens, chips, chip)
	if err != nil {
		t.Fatalf("TrainStep: %v", err)
	}
	if step.Total <= 0 || step.FCTime <= 0 || step.NonFCTime <= 0 {
		t.Errorf("degenerate step %+v", step)
	}
}

func TestFacadePlanningAPIs(t *testing.T) {
	cfg := meshslice.GPT3()
	chip := meshslice.TPUv4()

	foot, err := meshslice.EstimateMemory(cfg, meshslice.MemoryParams{
		TPDegree: 64, PPDegree: 8, TokensPerReplica: 4096,
		BytesPerParam: 2, SliceCount: 8,
	})
	if err != nil {
		t.Fatalf("EstimateMemory: %v", err)
	}
	if foot.Total() <= 0 {
		t.Errorf("degenerate footprint %+v", foot)
	}

	plans := meshslice.PlanCluster(cfg, 512, 128, chip, 8)
	if len(plans) == 0 {
		t.Fatalf("PlanCluster found nothing")
	}
	if plans[0].StepTime <= 0 || plans[0].Plan.Chips() != 512 {
		t.Errorf("bad best plan %+v", plans[0])
	}
}

func TestFacadeProfileLoaders(t *testing.T) {
	if _, err := meshslice.LoadChipProfile("/nonexistent.json"); err == nil {
		t.Errorf("missing chip profile accepted")
	}
	if _, err := meshslice.LoadModelConfig("/nonexistent.json"); err == nil {
		t.Errorf("missing model config accepted")
	}
}
